// Analytical cost model for distributed serverless inference (paper §IV,
// Equations 1-7) plus the design recommender of §IV-C.
//
// Validation (paper §VI-F): predictions computed from run metrics are
// compared against the billing ledger's "actual" charges — the simulation's
// equivalent of the AWS Cost & Usage report.
#ifndef FSD_CORE_COST_MODEL_H_
#define FSD_CORE_COST_MODEL_H_

#include <string>

#include "cloud/billing.h"
#include "cloud/faas.h"
#include "cloud/latency.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "model/sparse_dnn.h"
#include "part/model_partition.h"

namespace fsd::core {

struct CostBreakdown {
  double compute = 0.0;        ///< C_lambda
  double communication = 0.0;  ///< C_SNS + C_SQS, or C_S3
  double total = 0.0;
  std::string ToString() const;
};

/// C_lambda = P*C_inv + P*Tbar*M*C_run (Eq. 4).
double FaasCost(const cloud::PricingConfig& pricing, int32_t num_workers,
                double mean_runtime_s, int32_t memory_mb);

/// C_Queue = C_lambda + S*C_pub + Z*C_byte + Q*C_api (Eqs. 1, 5, 6).
CostBreakdown QueueCost(const cloud::PricingConfig& pricing,
                        int32_t num_workers, double mean_runtime_s,
                        int32_t memory_mb, double publish_chunks,
                        double delivery_bytes, double queue_api_calls);

/// C_Object = C_lambda + V*C_put + R*C_get + L*C_list (Eqs. 2, 7).
CostBreakdown ObjectCost(const cloud::PricingConfig& pricing,
                         int32_t num_workers, double mean_runtime_s,
                         int32_t memory_mb, double puts, double gets,
                         double lists);

/// C_KV = C_lambda + K*C_req + B*C_byte + T_ns*C_node/3600 — the KV
/// analogue of Eqs. 5-7: request and processed-byte metering plus the
/// standing node-hour cost of the run's cache namespace. Pass
/// node_seconds = 0 when the namespace's lifetime is accounted separately
/// (the billing ledger bills it at teardown).
CostBreakdown KvCost(const cloud::PricingConfig& pricing, int32_t num_workers,
                     double mean_runtime_s, int32_t memory_mb,
                     double requests, double processed_bytes,
                     double node_seconds);

/// C_Direct = C_lambda + N*C_conn + D*C_byte + K_r*C_req + B_r*C_pbyte —
/// the FSD-Inf-Direct analogue of Eqs. 5-7: one connection charge per
/// successfully punched link, per-byte transfer pricing on the links, and
/// KV request + processed-byte metering for the traffic of pairs that
/// failed to punch and relay through the cache.
CostBreakdown DirectCost(const cloud::PricingConfig& pricing,
                         int32_t num_workers, double mean_runtime_s,
                         int32_t memory_mb, double connections,
                         double direct_bytes, double relay_requests,
                         double relay_processed_bytes);

/// C_Serial = C_lambda (Eq. 3).
CostBreakdown SerialCost(const cloud::PricingConfig& pricing,
                         double runtime_s, int32_t memory_mb);

/// Billing-exact dollars for moving model shares between instances
/// (λScale-style peer distribution): fresh punched links at
/// C_P2P(connection), fabric bytes at C_P2P(byte), and — for pulls whose
/// punch failed — KV relay requests and processed bytes at the cache's
/// pricing. The arguments are the share-transfer mirror counters the
/// ShareDistributor records as it bills, so predictions built on run
/// metrics reconcile with the ledger exactly.
double ShareTransferCost(const cloud::PricingConfig& pricing,
                         int64_t peer_connects, int64_t peer_bytes,
                         int64_t relay_requests, int64_t relay_bytes);

/// A-priori peer-transfer vs. storage-read break-even for one cold load of
/// a `share_bytes` share: expected dollars and load seconds down each
/// path. The peer path blends the punched fabric (one connection + bytes;
/// memory-to-memory, so no re-deserialization) with the KV relay
/// (value-capped chunks at request + processed-byte pricing) at the
/// environment's punch-failure rate. Feeds the pre-warm policy's budget
/// accounting and the docs' break-even discussion; the measured-path
/// reconciliation uses ShareTransferCost, never this estimate.
struct ShareTransferEstimate {
  double storage_cost = 0.0;    ///< ModelReadGetParts(bytes) * C_S3(Get)
  double peer_cost = 0.0;       ///< expected peer-path dollars
  double storage_load_s = 0.0;  ///< GET + transfer + deserialization time
  double peer_load_s = 0.0;     ///< expected peer transfer time
  bool peer_cheaper = false;    ///< peer_cost < storage_cost
};

ShareTransferEstimate EstimateShareTransfer(
    const cloud::PricingConfig& pricing, const cloud::LatencyConfig& latency,
    const cloud::ComputeModelConfig& compute, uint64_t share_bytes,
    uint64_t relay_chunk_bytes);

/// Predicts the run's cost from its measured metrics (the §VI-F validation
/// path: fine-grained counters -> predicted dollars). Includes the
/// cache-aware model-read term: the multipart GETs each worker issued for
/// its weight share (metrics.model_get_parts — zero for workers whose
/// partition-cache lookup hit) priced at C_S3(Get), plus the peer
/// share-transfer term (ShareTransferCost over the run's share-transfer
/// mirrors) for misses a warm peer served, on top of the
/// variant's IPC terms. When `metrics` is a batched member's sliced view
/// (metrics.tree_share < 1), the per-invocation FaaS term is scaled to the
/// member's batch share of its shared worker tree, so member predictions
/// sum exactly to the tree's whole-run prediction.
CostBreakdown PredictFromMetrics(const cloud::PricingConfig& pricing,
                                 const FsdOptions& options,
                                 const RunMetrics& metrics,
                                 int32_t memory_mb);

/// A-priori model-read GET accounting for one query of a partitioned model
/// under an expected partition-cache hit ratio (the cache-aware term of
/// the recommender): cold serving pays `get_parts` multipart GETs per
/// query; a warm fleet hitting the cache on a fraction `hit_ratio` of
/// worker loads saves that fraction of them.
struct ModelReadEstimate {
  double get_parts = 0.0;   ///< GETs issued per query at this hit ratio
  double gets_saved = 0.0;  ///< GETs the cache avoids per query
  double cost = 0.0;        ///< get_parts * C_S3(Get)
  double savings = 0.0;     ///< gets_saved * C_S3(Get)
};

ModelReadEstimate EstimateModelReads(const cloud::PricingConfig& pricing,
                                     const model::SparseDnn& dnn,
                                     const part::ModelPartition& partition,
                                     double hit_ratio);

/// A-priori workload estimate (before any execution): sizes the paper's
/// S/Z/Q or V/R/L quantities from the partition maps and an expected
/// activation density, for use by the recommender.
struct WorkloadEstimate {
  double publish_chunks = 0.0;
  double delivery_bytes = 0.0;
  double queue_api_calls = 0.0;
  double puts = 0.0;
  double gets = 0.0;
  double lists = 0.0;
  double kv_requests = 0.0;
  double kv_processed_bytes = 0.0;
  /// Direct variant: distinct unordered worker pairs that communicate
  /// (punching is mutual — each punched pair bills exactly one
  /// connection), value-capped messages, and the bytes they carry. The
  /// caller splits messages/bytes between links and the KV relay by the
  /// environment's punch-failure rate.
  double direct_connections = 0.0;
  double direct_messages = 0.0;
  double direct_bytes = 0.0;
  double est_bytes_per_batch = 0.0;
};

WorkloadEstimate EstimateWorkload(const model::SparseDnn& dnn,
                                  const part::ModelPartition& partition,
                                  const FsdOptions& options,
                                  double activation_density, int32_t batch);

/// A-priori FsdLz wire/raw ratio for activation payloads — the single
/// constant every a-priori estimator shares. Runs with metrics use the
/// measured ratio instead (MeasuredCompressRatio).
inline constexpr double kAprioriCompressRatio = 0.6;

/// A-priori wire-bytes / lossless-raw-bytes ratio under the options' wire
/// codec. Lossless mode: kAprioriCompressRatio when compressing, else 1.
/// Quantized mode: of the ~6 raw bytes per nonzero (EstimateRowBytes), the
/// ~2 structure bytes keep the lossless treatment while the 4 value bytes
/// shrink to quant_bits/8 before entropy coding.
double EstimateWireRatio(const FsdOptions& options);

/// Measured send-path wire/raw ratio when the run's metrics carry both
/// counters; falls back to the a-priori EstimateWireRatio otherwise.
double MeasuredCompressRatio(const LayerMetrics& totals,
                             const FsdOptions& options);

/// CPU-seconds-vs-billed-bytes break-even for flipping the quantized wire
/// mode on one query's activation traffic: the billed-byte dollars the
/// narrower values save on this variant's metered dimension, against the
/// FaaS MB-second dollars of the extra quantize pass. Object storage and
/// the serial variant bill per request, not per byte, so quantization is
/// never worthwhile there.
struct QuantBreakEvenEstimate {
  double lossless_wire_bytes = 0.0;  ///< wire bytes without quantization
  double quant_wire_bytes = 0.0;     ///< wire bytes at `quant_bits`
  double bytes_saved = 0.0;
  double byte_dollars_saved = 0.0;  ///< at the variant's per-byte price
  double cpu_dollars_added = 0.0;   ///< quantize pass at C_run(memory)
  double net_saving = 0.0;          ///< byte dollars minus CPU dollars
  bool worthwhile = false;          ///< net_saving > 0
};

QuantBreakEvenEstimate EstimateQuantBreakEven(
    const cloud::PricingConfig& pricing,
    const cloud::ComputeModelConfig& compute, const FsdOptions& options,
    Variant variant, int32_t memory_mb, double raw_bytes_per_query,
    int32_t quant_bits);

/// §IV-C design recommendation: serial for models that fit one instance,
/// queue for growing parallelism at moderate volume, object storage once
/// volumes saturate pub-sub payload limits.
Variant RecommendVariant(const model::SparseDnn& dnn, int32_t num_workers,
                         const WorkloadEstimate& estimate);

/// Coarse analytic end-to-end latency estimate for one query: launch-tree
/// depth, model-share load, and the per-layer compute/communication
/// overlap, built from the same latency catalogue the simulator samples.
/// Deliberately approximate — it exists for relative ordering
/// (AutoSelectConfiguration) and order-of-magnitude throughput sizing
/// (admission control), not absolute accuracy.
double EstimateQueryLatency(const model::SparseDnn& dnn,
                            const FsdOptions& options,
                            const cloud::LatencyConfig& latency,
                            const cloud::ComputeModelConfig& compute,
                            double activation_density, int32_t batch,
                            Variant variant, int32_t workers);

/// A-priori sustainable serving throughput for a slot-bounded deployment
/// (the admission-control input: before any run completes, the serving
/// runtime must already know roughly what rate the fleet can sustain, so
/// overload is recognizable from the first burst). `est_run_s` is the
/// EstimateQueryLatency of one tree; the serving runtime refines it with
/// an EWMA of observed tree durations as runs complete.
struct ThroughputEstimate {
  double est_run_s = 0.0;        ///< per-worker-tree execution estimate
  double queries_per_run = 1.0;  ///< expected batch occupancy
  /// Queries/s at `max_concurrent_runs` simultaneous trees; +infinity when
  /// the dispatcher is unbounded (max_concurrent_runs <= 0).
  double sustainable_qps = 0.0;
};

ThroughputEstimate EstimateSustainableThroughput(
    const model::SparseDnn& dnn, const FsdOptions& options,
    const cloud::LatencyConfig& latency,
    const cloud::ComputeModelConfig& compute, double activation_density,
    int32_t batch, int32_t max_concurrent_runs, double expected_occupancy);

}  // namespace fsd::core

#endif  // FSD_CORE_COST_MODEL_H_
