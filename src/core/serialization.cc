#include "core/serialization.h"

#include <algorithm>

#include "codec/quant.h"
#include "codec/varint.h"

namespace fsd::core {
namespace {

constexpr uint8_t kUncompressedTag = 0;
constexpr uint8_t kCompressedTag = 1;
/// Quantized wire mode: [tag][varint structure len][structure wire]
/// [FQ values block]. The structure block (ids, nnz, dims, index deltas) is
/// itself a tagged lossless payload — exactness of the sparsity pattern is
/// never negotiable — while the values block carries the bounded-error
/// quantized floats.
constexpr uint8_t kQuantizedTag = 2;

/// Encodes one row's structure: id, nnz, dim, delta-coded indices.
void EncodeRowStructure(int32_t row_id, const linalg::SparseVector& row,
                        Bytes* out) {
  codec::PutVarint64(out, static_cast<uint64_t>(row_id));
  codec::PutVarint64(out, row.nnz());
  codec::PutVarint64(out, static_cast<uint64_t>(row.dim));
  int32_t prev = -1;
  for (int32_t idx : row.idx) {
    codec::PutVarint64(out, static_cast<uint64_t>(idx - prev - 1));
    prev = idx;
  }
}

/// Encodes one row into `out`: structure followed by raw float values.
void EncodeRow(int32_t row_id, const linalg::SparseVector& row, Bytes* out) {
  EncodeRowStructure(row_id, row, out);
  for (float v : row.val) AppendRaw(out, v);
}

/// Wraps a raw payload in the lossless wire framing (tag + optional LZ).
void WrapLossless(const Bytes& raw, bool compress,
                  const codec::LzOptions& lz, Bytes* wire) {
  if (compress) {
    wire->push_back(kCompressedTag);
    Bytes packed = codec::LzCompress(raw, lz);
    wire->insert(wire->end(), packed.begin(), packed.end());
  } else {
    wire->push_back(kUncompressedTag);
    wire->insert(wire->end(), raw.begin(), raw.end());
  }
}

/// Inverse of WrapLossless over a byte span.
Result<Bytes> UnwrapLossless(const uint8_t* data, size_t size) {
  if (size == 0) return Status::DataLoss("empty row payload");
  const uint8_t tag = data[0];
  if (tag == kCompressedTag) {
    Bytes inner(data + 1, data + size);
    return codec::LzDecompress(inner);
  }
  if (tag == kUncompressedTag) return Bytes(data + 1, data + size);
  return Status::DataLoss("unknown row payload tag");
}

/// Parses decoded structure+values payloads into `out`. When `values` is
/// non-null the rows' values come from it sequentially (quantized mode);
/// otherwise they follow each row's indices inline (lossless mode).
Status ParseRows(const Bytes& payload, const std::vector<float>* values,
                 linalg::ActivationMap* out) {
  ByteReader reader(payload);
  FSD_ASSIGN_OR_RETURN(uint64_t count, codec::GetVarint64(&reader));
  size_t next_value = 0;
  for (uint64_t r = 0; r < count; ++r) {
    FSD_ASSIGN_OR_RETURN(uint64_t row_id, codec::GetVarint64(&reader));
    FSD_ASSIGN_OR_RETURN(uint64_t nnz, codec::GetVarint64(&reader));
    FSD_ASSIGN_OR_RETURN(uint64_t dim, codec::GetVarint64(&reader));
    linalg::SparseVector row;
    row.dim = static_cast<int32_t>(dim);
    row.idx.reserve(nnz);
    row.val.reserve(nnz);
    int64_t prev = -1;
    for (uint64_t p = 0; p < nnz; ++p) {
      FSD_ASSIGN_OR_RETURN(uint64_t delta, codec::GetVarint64(&reader));
      const int64_t idx = prev + 1 + static_cast<int64_t>(delta);
      if (idx >= static_cast<int64_t>(dim)) {
        return Status::DataLoss("row index out of range");
      }
      row.idx.push_back(static_cast<int32_t>(idx));
      prev = idx;
    }
    if (values != nullptr) {
      if (next_value + nnz > values->size()) {
        return Status::DataLoss("quantized values underrun");
      }
      row.val.assign(values->begin() + next_value,
                     values->begin() + next_value + nnz);
      next_value += nnz;
    } else {
      for (uint64_t p = 0; p < nnz; ++p) {
        FSD_ASSIGN_OR_RETURN(float v, reader.Read<float>());
        row.val.push_back(v);
      }
    }
    (*out)[static_cast<int32_t>(row_id)] = std::move(row);
  }
  if (values != nullptr && next_value != values->size()) {
    return Status::DataLoss("quantized values overrun");
  }
  return Status::OK();
}

/// The rows EncodeRows/PlanRows operate on: the intersection of `row_ids`
/// and active rows of `source`, in `row_ids` order.
using RowRefs = std::vector<std::pair<int32_t, const linalg::SparseVector*>>;

RowRefs CollectActiveRows(const linalg::ActivationMap& source,
                          const std::vector<int32_t>& row_ids,
                          int64_t* active_nnz) {
  RowRefs rows;
  rows.reserve(row_ids.size());
  for (int32_t id : row_ids) {
    auto it = source.find(id);
    if (it == source.end() || it->second.empty()) continue;
    rows.push_back({id, &it->second});
    *active_nnz += static_cast<int64_t>(it->second.nnz());
  }
  return rows;
}

/// NNZ-heuristic greedy chunk end: extend the chunk starting at `i` while
/// the size estimate stays under the cap (always take at least one row).
/// One definition shared by EncodeRows and PlanRows so the planned chunk
/// layout can never drift from the encoded one.
size_t ChunkEnd(const RowRefs& rows, size_t i, uint64_t max_chunk_bytes) {
  size_t j = i;
  uint64_t estimate = 8;
  while (j < rows.size()) {
    const uint64_t row_bytes = EstimateRowBytes(rows[j].second->nnz());
    if (j > i && max_chunk_bytes > 0 &&
        estimate + row_bytes > max_chunk_bytes) {
      break;
    }
    estimate += row_bytes;
    ++j;
  }
  return j;
}

/// Exact encoded length of an unsigned LEB128 varint.
uint64_t VarintLen(uint64_t value) {
  uint64_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Exact bytes EncodeRow would append for this row — equivalently, the
/// row's share of a quantized chunk's lossless-equivalent raw size
/// (structure bytes + 4 per value; the two modes agree by construction).
uint64_t RowRawBytes(int32_t row_id, const linalg::SparseVector& row) {
  uint64_t n = VarintLen(static_cast<uint64_t>(row_id)) +
               VarintLen(row.nnz()) + VarintLen(static_cast<uint64_t>(row.dim));
  int32_t prev = -1;
  for (int32_t idx : row.idx) {
    n += VarintLen(static_cast<uint64_t>(idx - prev - 1));
    prev = idx;
  }
  return n + 4 * row.nnz();
}

}  // namespace

uint64_t EstimateRowBytes(int64_t nnz) {
  // ~8 bytes of row header + ~1.5 bytes per delta index + 4-byte value.
  return 8 + static_cast<uint64_t>(nnz) * 6;
}

EncodePlan PlanRows(const linalg::ActivationMap& source,
                    const std::vector<int32_t>& row_ids,
                    uint64_t max_chunk_bytes) {
  EncodePlan plan;
  const RowRefs rows = CollectActiveRows(source, row_ids, &plan.active_nnz);
  plan.active_rows = static_cast<int32_t>(rows.size());
  if (rows.empty()) {
    plan.num_chunks = 1;  // the explicit empty marker chunk
    plan.raw_bytes = 1;   // PutVarint64(0)
    return plan;
  }
  size_t i = 0;
  while (i < rows.size()) {
    const size_t j = ChunkEnd(rows, i, max_chunk_bytes);
    uint64_t raw = VarintLen(static_cast<uint64_t>(j - i));
    for (size_t r = i; r < j; ++r) {
      raw += RowRawBytes(rows[r].first, *rows[r].second);
    }
    plan.raw_bytes += raw;
    ++plan.num_chunks;
    i = j;
  }
  return plan;
}

EncodeResult EncodeRows(const linalg::ActivationMap& source,
                        const std::vector<int32_t>& row_ids,
                        uint64_t max_chunk_bytes, const WireCodec& codec) {
  EncodeResult result;
  // Collect present rows first so chunk row counts can be prefixed.
  const RowRefs rows =
      CollectActiveRows(source, row_ids, &result.active_nnz);
  result.active_rows = static_cast<int32_t>(rows.size());
  const bool quantize = codec.quant_bits != 0;

  size_t i = 0;
  while (i < rows.size()) {
    const size_t j = ChunkEnd(rows, i, max_chunk_bytes);
    RowChunk chunk;
    if (quantize) {
      Bytes structure;
      std::vector<float> values;
      codec::PutVarint64(&structure, static_cast<uint64_t>(j - i));
      for (size_t r = i; r < j; ++r) {
        EncodeRowStructure(rows[r].first, *rows[r].second, &structure);
        values.insert(values.end(), rows[r].second->val.begin(),
                      rows[r].second->val.end());
        chunk.nnz += static_cast<int64_t>(rows[r].second->nnz());
      }
      // Lossless-equivalent raw size keeps compression-ratio metrics
      // comparable across wire modes.
      chunk.raw_bytes = structure.size() + 4 * values.size();
      codec::QuantStats qstats;
      const Bytes fq = codec::QuantCompress(values.data(), values.size(),
                                            codec.quant_bits, &qstats);
      Bytes structure_wire;
      WrapLossless(structure, codec.compress, codec.lz, &structure_wire);
      chunk.wire.push_back(kQuantizedTag);
      codec::PutVarint64(&chunk.wire, structure_wire.size());
      chunk.wire.insert(chunk.wire.end(), structure_wire.begin(),
                        structure_wire.end());
      chunk.wire.insert(chunk.wire.end(), fq.begin(), fq.end());
      chunk.quant_bits = codec.quant_bits;
      chunk.quant_values = static_cast<int64_t>(values.size());
      chunk.quant_err_max = qstats.max_rel_err;
    } else {
      Bytes raw;
      codec::PutVarint64(&raw, static_cast<uint64_t>(j - i));
      for (size_t r = i; r < j; ++r) {
        EncodeRow(rows[r].first, *rows[r].second, &raw);
        chunk.nnz += static_cast<int64_t>(rows[r].second->nnz());
      }
      chunk.raw_bytes = raw.size();
      WrapLossless(raw, codec.compress, codec.lz, &chunk.wire);
    }
    chunk.num_rows = static_cast<int32_t>(j - i);
    result.chunks.push_back(std::move(chunk));
    i = j;
  }
  if (result.chunks.empty()) {
    // Explicit empty chunk: the receiver needs a positive signal that this
    // source has nothing for this layer (otherwise it would wait forever).
    // Always lossless — there are no values to quantize.
    RowChunk chunk;
    Bytes raw;
    codec::PutVarint64(&raw, 0);
    chunk.raw_bytes = raw.size();
    chunk.wire.push_back(kUncompressedTag);
    chunk.wire.insert(chunk.wire.end(), raw.begin(), raw.end());
    result.chunks.push_back(std::move(chunk));
  }
  return result;
}

Status DecodeRows(const Bytes& wire, linalg::ActivationMap* out) {
  if (wire.empty()) return Status::DataLoss("empty row payload");
  if (wire[0] == kQuantizedTag) {
    ByteReader reader(wire.data() + 1, wire.size() - 1);
    FSD_ASSIGN_OR_RETURN(uint64_t structure_len, codec::GetVarint64(&reader));
    const size_t pos = 1 + reader.position();
    if (structure_len > wire.size() - pos) {
      return Status::DataLoss("quantized structure overruns chunk");
    }
    FSD_ASSIGN_OR_RETURN(Bytes structure,
                         UnwrapLossless(wire.data() + pos, structure_len));
    const Bytes fq(wire.begin() + pos + structure_len, wire.end());
    FSD_ASSIGN_OR_RETURN(std::vector<float> values,
                         codec::QuantDecompress(fq));
    return ParseRows(structure, &values, out);
  }
  FSD_ASSIGN_OR_RETURN(Bytes payload,
                       UnwrapLossless(wire.data(), wire.size()));
  return ParseRows(payload, nullptr, out);
}

}  // namespace fsd::core
