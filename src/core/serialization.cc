#include "core/serialization.h"

#include <algorithm>

#include "codec/varint.h"

namespace fsd::core {
namespace {

constexpr uint8_t kUncompressedTag = 0;
constexpr uint8_t kCompressedTag = 1;

/// Encodes one row into `out`: id, nnz, delta-coded indices, raw values.
void EncodeRow(int32_t row_id, const linalg::SparseVector& row, Bytes* out) {
  codec::PutVarint64(out, static_cast<uint64_t>(row_id));
  codec::PutVarint64(out, row.nnz());
  codec::PutVarint64(out, static_cast<uint64_t>(row.dim));
  int32_t prev = -1;
  for (int32_t idx : row.idx) {
    codec::PutVarint64(out, static_cast<uint64_t>(idx - prev - 1));
    prev = idx;
  }
  for (float v : row.val) AppendRaw(out, v);
}

}  // namespace

uint64_t EstimateRowBytes(int64_t nnz) {
  // ~8 bytes of row header + ~1.5 bytes per delta index + 4-byte value.
  return 8 + static_cast<uint64_t>(nnz) * 6;
}

EncodeResult EncodeRows(const linalg::ActivationMap& source,
                        const std::vector<int32_t>& row_ids,
                        uint64_t max_chunk_bytes, bool compress,
                        const codec::LzOptions& codec) {
  EncodeResult result;
  // Collect present rows first so chunk row counts can be prefixed.
  std::vector<std::pair<int32_t, const linalg::SparseVector*>> rows;
  rows.reserve(row_ids.size());
  for (int32_t id : row_ids) {
    auto it = source.find(id);
    if (it == source.end() || it->second.empty()) continue;
    rows.push_back({id, &it->second});
    result.active_nnz += static_cast<int64_t>(it->second.nnz());
  }
  result.active_rows = static_cast<int32_t>(rows.size());

  size_t i = 0;
  while (i < rows.size()) {
    // NNZ-heuristic greedy packing: extend the chunk while the size
    // estimate stays under the cap (always take at least one row).
    size_t j = i;
    uint64_t estimate = 8;
    while (j < rows.size()) {
      const uint64_t row_bytes = EstimateRowBytes(rows[j].second->nnz());
      if (j > i && max_chunk_bytes > 0 &&
          estimate + row_bytes > max_chunk_bytes) {
        break;
      }
      estimate += row_bytes;
      ++j;
    }
    RowChunk chunk;
    Bytes raw;
    codec::PutVarint64(&raw, static_cast<uint64_t>(j - i));
    for (size_t r = i; r < j; ++r) {
      EncodeRow(rows[r].first, *rows[r].second, &raw);
      chunk.nnz += static_cast<int64_t>(rows[r].second->nnz());
    }
    chunk.num_rows = static_cast<int32_t>(j - i);
    chunk.raw_bytes = raw.size();
    if (compress) {
      chunk.wire.push_back(kCompressedTag);
      Bytes packed = codec::LzCompress(raw, codec);
      chunk.wire.insert(chunk.wire.end(), packed.begin(), packed.end());
    } else {
      chunk.wire.push_back(kUncompressedTag);
      chunk.wire.insert(chunk.wire.end(), raw.begin(), raw.end());
    }
    result.chunks.push_back(std::move(chunk));
    i = j;
  }
  if (result.chunks.empty()) {
    // Explicit empty chunk: the receiver needs a positive signal that this
    // source has nothing for this layer (otherwise it would wait forever).
    RowChunk chunk;
    Bytes raw;
    codec::PutVarint64(&raw, 0);
    chunk.raw_bytes = raw.size();
    chunk.wire.push_back(kUncompressedTag);
    chunk.wire.insert(chunk.wire.end(), raw.begin(), raw.end());
    result.chunks.push_back(std::move(chunk));
  }
  return result;
}

Status DecodeRows(const Bytes& wire, bool /*compressed_hint*/,
                  linalg::ActivationMap* out) {
  if (wire.empty()) return Status::DataLoss("empty row payload");
  const uint8_t tag = wire[0];
  Bytes inflated;
  const Bytes* payload = nullptr;
  if (tag == kCompressedTag) {
    Bytes inner(wire.begin() + 1, wire.end());
    FSD_ASSIGN_OR_RETURN(inflated, codec::LzDecompress(inner));
    payload = &inflated;
  } else if (tag == kUncompressedTag) {
    inflated.assign(wire.begin() + 1, wire.end());
    payload = &inflated;
  } else {
    return Status::DataLoss("unknown row payload tag");
  }

  ByteReader reader(*payload);
  FSD_ASSIGN_OR_RETURN(uint64_t count, codec::GetVarint64(&reader));
  for (uint64_t r = 0; r < count; ++r) {
    FSD_ASSIGN_OR_RETURN(uint64_t row_id, codec::GetVarint64(&reader));
    FSD_ASSIGN_OR_RETURN(uint64_t nnz, codec::GetVarint64(&reader));
    FSD_ASSIGN_OR_RETURN(uint64_t dim, codec::GetVarint64(&reader));
    linalg::SparseVector row;
    row.dim = static_cast<int32_t>(dim);
    row.idx.reserve(nnz);
    row.val.reserve(nnz);
    int64_t prev = -1;
    for (uint64_t p = 0; p < nnz; ++p) {
      FSD_ASSIGN_OR_RETURN(uint64_t delta, codec::GetVarint64(&reader));
      const int64_t idx = prev + 1 + static_cast<int64_t>(delta);
      if (idx >= static_cast<int64_t>(dim)) {
        return Status::DataLoss("row index out of range");
      }
      row.idx.push_back(static_cast<int32_t>(idx));
      prev = idx;
    }
    for (uint64_t p = 0; p < nnz; ++p) {
      FSD_ASSIGN_OR_RETURN(float v, reader.Read<float>());
      row.val.push_back(v);
    }
    (*out)[static_cast<int32_t>(row_id)] = std::move(row);
  }
  return Status::OK();
}

}  // namespace fsd::core
