// MPI-style collective operations over the serverless channels (paper
// §V-A1: "our work also implements MPI primitives (Send, Recv, Broadcast,
// Reduce), but avoids the use of an external provisioned server").
//
// All collectives ride the CommChannel phase machinery, so they work
// identically over FSD-Inf-Queue and FSD-Inf-Object. Phase ids must be
// distinct per operation (the FSI loop reserves ids >= layers; see
// channel.h).
#ifndef FSD_CORE_COLLECTIVES_H_
#define FSD_CORE_COLLECTIVES_H_

#include "core/channel.h"

namespace fsd::core {

/// Point-to-point send of activation rows (MPI_Send analogue).
Status Send(CommChannel* channel, WorkerEnv* env, int32_t phase,
            int32_t target, const linalg::ActivationMap& rows);

/// Point-to-point receive from one source (MPI_Recv analogue).
Result<linalg::ActivationMap> Recv(CommChannel* channel, WorkerEnv* env,
                                   int32_t phase, int32_t source);

/// Synchronizes all `num_workers` workers: everyone arrives at the root,
/// then the root releases everyone. Consumes phases [phase, phase+1].
Status Barrier(CommChannel* channel, WorkerEnv* env, int32_t phase,
               int32_t num_workers, int32_t root = 0);

/// Gathers every worker's rows at the root; row sets are disjoint under the
/// row-wise decomposition, so the union is the reduction (the paper's
/// reduce(P0, x^L_m)). Non-roots return an empty map.
Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     int32_t phase, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root = 0);

/// Broadcasts the root's rows to every worker (MPI_Bcast analogue).
Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        int32_t phase, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root = 0);

}  // namespace fsd::core

#endif  // FSD_CORE_COLLECTIVES_H_
