// MPI-style collective operations over the serverless channels (paper
// §V-A1: "our work also implements MPI primitives (Send, Recv, Broadcast,
// Reduce), but avoids the use of an external provisioned server").
//
// All collectives ride the CommChannel phase machinery, so they work
// identically over every backend. Each operation runs over a selectable
// topology (FMI-style):
//   through-root  one round; the root sends/receives P-1 messages
//   binomial      ceil(log2 P) rounds; every worker handles <= 1 message
//                 per round (tree gather/scatter)
//   ring          P-1 rounds; a chain pipeline with 1 message per round
// Every topology produces byte-identical results — Reduce is a disjoint
// row-set union into an ordered map, so merge order is immaterial — but
// multi-round topologies need one phase id PER ROUND: callers hand each
// operation a PhaseBlock reserved by the PhaseAllocator (see channel.h).
// The phase-only overloads keep the legacy through-root behaviour.
#ifndef FSD_CORE_COLLECTIVES_H_
#define FSD_CORE_COLLECTIVES_H_

#include "core/channel.h"

namespace fsd::core {

/// Point-to-point send of activation rows (MPI_Send analogue).
Status Send(CommChannel* channel, WorkerEnv* env, int32_t phase,
            int32_t target, const linalg::ActivationMap& rows);

/// Point-to-point receive from one source (MPI_Recv analogue).
Result<linalg::ActivationMap> Recv(CommChannel* channel, WorkerEnv* env,
                                   int32_t phase, int32_t source);

/// Synchronizes all `num_workers` workers: a gather-up (empty payloads)
/// over the `arrive` block, then a release-down over the `release` block,
/// both run with the selected topology. Each block needs
/// CollectiveRounds(topology, num_workers) phases.
Status Barrier(CommChannel* channel, WorkerEnv* env,
               CollectiveTopology topology, PhaseBlock arrive,
               PhaseBlock release, int32_t num_workers, int32_t root = 0);

/// Legacy through-root overload. Consumes phases [phase, phase+1].
Status Barrier(CommChannel* channel, WorkerEnv* env, int32_t phase,
               int32_t num_workers, int32_t root = 0);

/// Gathers every worker's rows at the root over the selected topology;
/// row sets are disjoint under the row-wise decomposition, so the union is
/// the reduction (the paper's reduce(P0, x^L_m)) and every topology yields
/// the same map. Non-roots return an empty map.
Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     CollectiveTopology topology,
                                     PhaseBlock block, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root = 0);

/// Legacy through-root overload (consumes exactly `phase`).
Result<linalg::ActivationMap> Reduce(CommChannel* channel, WorkerEnv* env,
                                     int32_t phase, int32_t num_workers,
                                     const linalg::ActivationMap& mine,
                                     int32_t root = 0);

/// Broadcasts the root's rows to every worker (MPI_Bcast analogue) over
/// the selected topology.
Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        CollectiveTopology topology,
                                        PhaseBlock block, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root = 0);

/// Legacy through-root overload (consumes exactly `phase`).
Result<linalg::ActivationMap> Broadcast(CommChannel* channel, WorkerEnv* env,
                                        int32_t phase, int32_t num_workers,
                                        const linalg::ActivationMap& rows,
                                        int32_t root = 0);

}  // namespace fsd::core

#endif  // FSD_CORE_COLLECTIVES_H_
