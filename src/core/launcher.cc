#include "core/launcher.h"

#include <cmath>

#include "common/check.h"

namespace fsd::core {

std::vector<int32_t> TreeChildren(int32_t worker_id, int32_t branching,
                                  int32_t num_workers) {
  FSD_CHECK_GE(branching, 1);
  std::vector<int32_t> children;
  for (int32_t j = 1; j <= branching; ++j) {
    const int64_t child =
        static_cast<int64_t>(worker_id) * branching + j;
    if (child >= num_workers) break;
    children.push_back(static_cast<int32_t>(child));
  }
  return children;
}

int32_t TreeParent(int32_t worker_id, int32_t branching) {
  if (worker_id == 0) return -1;
  return (worker_id - 1) / branching;
}

std::vector<int32_t> ChildrenToInvoke(LaunchStrategy strategy,
                                      int32_t worker_id, int32_t branching,
                                      int32_t num_workers) {
  switch (strategy) {
    case LaunchStrategy::kHierarchical:
      return TreeChildren(worker_id, branching, num_workers);
    case LaunchStrategy::kTwoLevel: {
      std::vector<int32_t> children;
      const int32_t leaves = num_workers - 1;
      if (leaves <= 0) return children;
      const int32_t managers = std::max<int32_t>(
          1, static_cast<int32_t>(std::lround(std::sqrt(leaves))));
      const int32_t slice = (leaves + managers - 1) / managers;
      if (worker_id == 0) {
        // Root invokes the first worker of each slice.
        for (int32_t m = 0; m < managers; ++m) {
          const int32_t first = 1 + m * slice;
          if (first < num_workers) children.push_back(first);
        }
      } else if ((worker_id - 1) % slice == 0) {
        // Slice managers invoke the rest of their slice.
        for (int32_t i = worker_id + 1;
             i < std::min(num_workers, worker_id + slice); ++i) {
          children.push_back(i);
        }
      }
      return children;
    }
    case LaunchStrategy::kCentralized:
      return {};
  }
  return {};
}

std::vector<int32_t> CoordinatorInvokes(LaunchStrategy strategy,
                                        int32_t num_workers) {
  std::vector<int32_t> ids;
  if (strategy == LaunchStrategy::kCentralized) {
    for (int32_t i = 0; i < num_workers; ++i) ids.push_back(i);
  } else {
    ids.push_back(0);
  }
  return ids;
}

}  // namespace fsd::core
