#include "core/direct_channel.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "core/kv_channel.h"
#include "sim/simulation.h"

namespace fsd::core {
namespace {

/// Ensures the pair's link exists and accounts a fresh punch attempt.
/// Punching is mutual, so the fabric keys link state by the unordered
/// pair: whichever side asks first books the one connection/failure, and
/// the reverse direction's Connect is a free cache hit — never a second
/// charge for the same physical link.
/// Returns whether the pair is punched (false: the pair relays via KV).
Result<bool> EnsureLink(WorkerEnv* env, LayerMetrics* metrics,
                        const std::string& session, int32_t src,
                        int32_t dst) {
  cloud::P2pFabric::ConnectOutcome conn =
      env->cloud->p2p().Connect(session, src, dst);
  FSD_RETURN_IF_ERROR(conn.status);
  if (conn.fresh) {
    if (conn.punched) {
      ++metrics->direct_connects;
    } else {
      ++metrics->punch_failures;
    }
  }
  return conn.punched;
}

}  // namespace

std::string DirectChannel::SessionName(const FsdOptions& options) {
  return StrFormat("%sp2p", options.channel_scope.c_str());
}

std::string DirectChannel::RelayNamespaceName(const FsdOptions& options) {
  return StrFormat("%srelay", options.channel_scope.c_str());
}

std::string DirectChannel::InboxKey(int32_t phase, int32_t target) {
  return StrFormat("p%d/w%d", phase, target);
}

Status DirectChannel::Provision(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  const std::string session = SessionName(options);
  if (!cloud->p2p().SessionExists(session)) {
    FSD_RETURN_IF_ERROR(cloud->p2p().CreateSession(session));
  }
  const std::string relay = RelayNamespaceName(options);
  if (!cloud->kv().NamespaceExists(relay)) {
    cloud::KvNamespaceOptions ns_options;
    ns_options.num_shards = std::max<int32_t>(1, options.kv_shards);
    FSD_RETURN_IF_ERROR(cloud->kv().CreateNamespace(relay, ns_options));
  }
  return Status::OK();
}

Status DirectChannel::Teardown(cloud::CloudEnv* cloud,
                               const FsdOptions& options) {
  const std::string session = SessionName(options);
  if (cloud->p2p().SessionExists(session)) {
    FSD_RETURN_IF_ERROR(cloud->p2p().DeleteSession(session));
  }
  const std::string relay = RelayNamespaceName(options);
  if (!cloud->kv().NamespaceExists(relay)) return Status::OK();
  return cloud->kv().DeleteNamespace(relay);
}

Status DirectChannel::SendPhase(WorkerEnv* env, int32_t phase,
                                const linalg::ActivationMap& source,
                                const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  // 1) Encode per-target chunk lists (the KV value cap: the relay must
  // accept any chunk verbatim). An empty send still produces one marker
  // chunk so the receiver's per-source accounting completes without data.
  struct Outgoing {
    int32_t target = 0;
    bool punched = false;
    std::string key;
    Bytes value;
  };
  std::vector<Outgoing> outgoing;
  uint64_t serialize_bytes = 0;
  for (const SendSpec& send : sends) {
    metrics.send_rows_mapped += static_cast<int64_t>(send.rows->size());
    FSD_ASSIGN_OR_RETURN(
        const bool punched,
        EnsureLink(env, &metrics, SessionName(options), env->worker_id,
                   send.target));
    EncodeResult encoded =
        EncodeRows(source, *send.rows, options.kv_max_value_bytes,
                   WireCodecFromOptions(options));
    metrics.send_rows_active += encoded.active_rows;
    const int32_t total = static_cast<int32_t>(encoded.chunks.size());
    for (int32_t seq = 0; seq < total; ++seq) {
      RowChunk& chunk = encoded.chunks[seq];
      serialize_bytes += AccountSendChunk(&metrics, chunk);
      outgoing.push_back({send.target, punched,
                          InboxKey(phase, send.target),
                          EncodeInboxValue(env->worker_id, seq, total,
                                           std::move(chunk.wire))});
    }
  }

  // 2) Serialization/compression CPU (parallel over IPC lanes).
  FSD_RETURN_IF_ERROR(
      ChargeSerializeCpu(env, &metrics, serialize_bytes, outgoing.size()));

  // 3) Lane-scheduled dispatch. Punched values ship over the fabric
  // (bytes billed at send); relayed values are KV pushes, metered exactly
  // like FSD-Inf-KV traffic so the cost model's relay terms stay exact.
  DispatchLanes lanes(options.io_lanes,
                      env->cloud->latency().p2p_send.median_s);
  for (const Outgoing& out : outgoing) {
    if (out.punched) {
      ++metrics.direct_msgs;
      metrics.direct_billed_bytes += static_cast<int64_t>(out.value.size());
    } else {
      ++metrics.kv_pushes;
      ++metrics.relay_fallback_msgs;
      metrics.send_billed_bytes += static_cast<int64_t>(out.value.size());
    }
  }
  const std::string session = SessionName(options);
  const std::string relay = RelayNamespaceName(options);
  const int32_t me = env->worker_id;
  for (Outgoing& out : outgoing) {
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    if (out.punched) {
      env->cloud->sim()->ScheduleCallback(
          offset, [cloud, session, me, target = out.target,
                   key = std::move(out.key),
                   value = std::move(out.value)]() mutable {
            cloud->p2p().Send(session, me, target, key, std::move(value));
          });
    } else {
      env->cloud->sim()->ScheduleCallback(
          offset, [cloud, relay, key = std::move(out.key),
                   value = std::move(out.value)]() mutable {
            cloud->kv().Push(relay, key, std::move(value));
          });
    }
  }
  // The worker only pays the pipelined dispatch overhead; the op round
  // trips ride on the lanes above.
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, outgoing.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> DirectChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  struct Progress {
    int32_t expected = -1;
    int32_t got = 0;
    bool punched = false;
  };
  std::map<int32_t, Progress> pending;
  for (int32_t s : sources) pending.emplace(s, Progress{});

  const std::string session = SessionName(options);
  const std::string relay = RelayNamespaceName(options);
  const std::string inbox = InboxKey(phase, env->worker_id);

  // Punch outcomes are deterministic per ordered pair, so the receiver
  // knows up front which sources must relay (Connect is idempotent and
  // punching is mutual — asking from this side costs nothing extra). The
  // loop below then only ever blocks on an inbox that can still deliver:
  // fully-punched phases never touch the KV relay, and once every punched
  // source completed, the fabric pop (which nothing will ever feed again)
  // is skipped instead of burning its full wait before each relay pop.
  int32_t punched_pending = 0;
  int32_t relay_pending = 0;
  for (int32_t s : sources) {
    FSD_ASSIGN_OR_RETURN(
        const bool punched,
        EnsureLink(env, &metrics, session, s, env->worker_id));
    pending[s].punched = punched;
    ++(punched ? punched_pending : relay_pending);
  }

  auto consume = [&](const Bytes& value, bool billed) -> Status {
    if (billed) {
      // Relay pops bill the full value, header included — the cache
      // meters what it moved, not what the receiver could use.
      metrics.recv_billed_bytes += static_cast<int64_t>(value.size());
    }
    FSD_ASSIGN_OR_RETURN(DecodedInboxValue decoded, DecodeInboxValue(value));
    auto it = pending.find(decoded.source);
    if (it == pending.end()) {
      // Pops are destructive, so a duplicate can only mean a stray value
      // from a mis-scoped sender; count it like the other channels do.
      ++metrics.redundant_skipped;
      return Status::OK();
    }
    it->second.expected = decoded.total;
    ++it->second.got;
    metrics.recv_wire_bytes += static_cast<int64_t>(decoded.body.size());
    const size_t before = received.size();
    FSD_RETURN_IF_ERROR(DecodeRows(decoded.body, &received));
    metrics.recv_rows += static_cast<int64_t>(received.size() - before);
    if (it->second.got == it->second.expected) {
      --(it->second.punched ? punched_pending : relay_pending);
      pending.erase(it);
    }
    return Status::OK();
  };

  auto pay_deserialize = [&](uint64_t popped_bytes) -> Status {
    const double deser_s =
        static_cast<double>(popped_bytes) / compute.deserialize_bytes_per_s;
    metrics.deserialize_s += deser_s;
    return env->faas->SleepFor(deser_s);
  };

  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    if (punched_pending > 0) {
      FSD_ASSIGN_OR_RETURN(
          std::vector<Bytes> values,
          env->cloud->p2p().BlockingPopAll(session, inbox,
                                           cloud::kMaxValuesPerInboxPop,
                                           options.direct_poll_wait_s));
      ++metrics.direct_pops;
      if (values.empty()) ++metrics.direct_empty_pops;
      uint64_t popped_bytes = 0;
      for (const Bytes& value : values) {
        popped_bytes += value.size();
        FSD_RETURN_IF_ERROR(consume(value, /*billed=*/false));
      }
      FSD_RETURN_IF_ERROR(pay_deserialize(popped_bytes));
    }
    if (pending.empty() || relay_pending == 0) continue;

    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_ASSIGN_OR_RETURN(
        std::vector<Bytes> relayed,
        env->cloud->kv().BlockingPopAll(relay, inbox, cloud::kMaxValuesPerPop,
                                        options.kv_poll_wait_s));
    ++metrics.kv_pops;
    if (relayed.empty()) ++metrics.kv_empty_pops;
    uint64_t popped_bytes = 0;
    for (const Bytes& value : relayed) {
      popped_bytes += value.size();
      FSD_RETURN_IF_ERROR(consume(value, /*billed=*/true));
    }
    FSD_RETURN_IF_ERROR(pay_deserialize(popped_bytes));
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
