#include "core/direct_channel.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "core/kv_channel.h"
#include "sim/simulation.h"

namespace fsd::core {
namespace {

/// Ensures the pair's link exists and accounts a fresh punch attempt.
/// Punching is mutual, so the fabric keys link state by the unordered
/// pair: whichever side asks first books the one connection/failure, and
/// the reverse direction's Connect is a free cache hit — never a second
/// charge for the same physical link.
/// Returns whether the pair is punched (false: the pair relays via KV).
Result<bool> EnsureLink(WorkerEnv* env, LayerMetrics* metrics,
                        const std::string& session, int32_t src,
                        int32_t dst) {
  cloud::P2pFabric::ConnectOutcome conn =
      env->cloud->p2p().Connect(session, src, dst);
  FSD_RETURN_IF_ERROR(conn.status);
  if (conn.fresh) {
    if (conn.punched) {
      ++metrics->direct_connects;
    } else {
      ++metrics->punch_failures;
    }
  }
  return conn.punched;
}

}  // namespace

std::string DirectChannel::SessionName(const FsdOptions& options) {
  return StrFormat("%sp2p", options.channel_scope.c_str());
}

std::string DirectChannel::RelayNamespaceName(const FsdOptions& options) {
  return StrFormat("%srelay", options.channel_scope.c_str());
}

std::string DirectChannel::InboxKey(int32_t phase, int32_t target) {
  return StrFormat("p%d/w%d", phase, target);
}

Status DirectChannel::Provision(cloud::CloudEnv* cloud,
                                const FsdOptions& options) {
  const std::string session = SessionName(options);
  if (!cloud->p2p().SessionExists(session)) {
    FSD_RETURN_IF_ERROR(cloud->p2p().CreateSession(session));
  }
  const std::string relay = RelayNamespaceName(options);
  if (!cloud->kv().NamespaceExists(relay)) {
    cloud::KvNamespaceOptions ns_options;
    ns_options.num_shards = std::max<int32_t>(1, options.kv_shards);
    FSD_RETURN_IF_ERROR(cloud->kv().CreateNamespace(relay, ns_options));
  }
  return Status::OK();
}

Status DirectChannel::Teardown(cloud::CloudEnv* cloud,
                               const FsdOptions& options) {
  const std::string session = SessionName(options);
  if (cloud->p2p().SessionExists(session)) {
    FSD_RETURN_IF_ERROR(cloud->p2p().DeleteSession(session));
  }
  const std::string relay = RelayNamespaceName(options);
  if (!cloud->kv().NamespaceExists(relay)) return Status::OK();
  return cloud->kv().DeleteNamespace(relay);
}

Status DirectChannel::SendPhase(WorkerEnv* env, int32_t phase,
                                const linalg::ActivationMap& source,
                                const std::vector<SendSpec>& sends) {
  if (sends.empty()) return Status::OK();
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  metrics.send_targets += static_cast<int64_t>(sends.size());

  // 1) Plan: resolve punch state per target and replay the chunking
  // arithmetic (the KV value cap: the relay must accept any chunk
  // verbatim), so the CPU charge is computable before encoding. An empty
  // send still produces one marker chunk so the receiver's per-source
  // accounting completes without data.
  uint64_t serialize_bytes = 0;
  size_t total_chunks = 0;
  std::vector<bool> punched_send(sends.size());
  for (size_t s = 0; s < sends.size(); ++s) {
    metrics.send_rows_mapped += static_cast<int64_t>(sends[s].rows->size());
    FSD_ASSIGN_OR_RETURN(
        const bool punched,
        EnsureLink(env, &metrics, SessionName(options), env->worker_id,
                   sends[s].target));
    punched_send[s] = punched;
    const EncodePlan plan =
        PlanRows(source, *sends[s].rows, options.kv_max_value_bytes);
    metrics.send_rows_active += plan.active_rows;
    serialize_bytes += plan.raw_bytes;
    total_chunks += plan.num_chunks;
  }

  // 2) Serialization/compression CPU (parallel over IPC lanes), with the
  // encode itself run under the charged window; chunk accounting and
  // dispatch follow the join.
  std::vector<EncodeResult> encoded(sends.size());
  FSD_RETURN_IF_ERROR(OffloadSerializeCpu(
      env, &metrics, serialize_bytes, total_chunks, [&]() {
        for (size_t s = 0; s < sends.size(); ++s) {
          encoded[s] =
              EncodeRows(source, *sends[s].rows, options.kv_max_value_bytes,
                         WireCodecFromOptions(options));
        }
      }));

  struct Outgoing {
    int32_t target = 0;
    bool punched = false;
    std::string key;
    Bytes value;
  };
  std::vector<Outgoing> outgoing;
  outgoing.reserve(total_chunks);
  for (size_t s = 0; s < sends.size(); ++s) {
    const int32_t total = static_cast<int32_t>(encoded[s].chunks.size());
    for (int32_t seq = 0; seq < total; ++seq) {
      RowChunk& chunk = encoded[s].chunks[seq];
      AccountSendChunk(&metrics, chunk);
      outgoing.push_back({sends[s].target, punched_send[s],
                          InboxKey(phase, sends[s].target),
                          EncodeInboxValue(env->worker_id, seq, total,
                                           std::move(chunk.wire))});
    }
  }

  // 3) Lane-scheduled dispatch. Punched values ship over the fabric
  // (bytes billed at send); relayed values are KV pushes, metered exactly
  // like FSD-Inf-KV traffic so the cost model's relay terms stay exact.
  DispatchLanes lanes(options.io_lanes,
                      env->cloud->latency().p2p_send.median_s);
  for (const Outgoing& out : outgoing) {
    if (out.punched) {
      ++metrics.direct_msgs;
      metrics.direct_billed_bytes += static_cast<int64_t>(out.value.size());
    } else {
      ++metrics.kv_pushes;
      ++metrics.relay_fallback_msgs;
      metrics.send_billed_bytes += static_cast<int64_t>(out.value.size());
    }
  }
  const std::string session = SessionName(options);
  const std::string relay = RelayNamespaceName(options);
  const int32_t me = env->worker_id;
  for (Outgoing& out : outgoing) {
    const double offset = lanes.NextOffset();
    cloud::CloudEnv* cloud = env->cloud;
    if (out.punched) {
      env->cloud->sim()->ScheduleCallback(
          offset, [cloud, session, me, target = out.target,
                   key = std::move(out.key),
                   value = std::move(out.value)]() mutable {
            cloud->p2p().Send(session, me, target, key, std::move(value));
          });
    } else {
      env->cloud->sim()->ScheduleCallback(
          offset, [cloud, relay, key = std::move(out.key),
                   value = std::move(out.value)]() mutable {
            cloud->kv().Push(relay, key, std::move(value));
          });
    }
  }
  // The worker only pays the pipelined dispatch overhead; the op round
  // trips ride on the lanes above.
  FSD_RETURN_IF_ERROR(ChargeDispatchOverhead(env, outgoing.size()));
  return Status::OK();
}

Result<linalg::ActivationMap> DirectChannel::ReceivePhase(
    WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) {
  linalg::ActivationMap received;
  if (sources.empty()) return received;
  const FsdOptions& options = *env->options;
  LayerMetrics& metrics = env->metrics->Layer(phase);
  const double start = env->cloud->sim()->Now();
  const auto& compute = env->cloud->compute();

  struct Progress {
    int32_t expected = -1;
    int32_t got = 0;
    bool punched = false;
  };
  std::map<int32_t, Progress> pending;
  for (int32_t s : sources) pending.emplace(s, Progress{});

  const std::string session = SessionName(options);
  const std::string relay = RelayNamespaceName(options);
  const std::string inbox = InboxKey(phase, env->worker_id);

  // Punch outcomes are deterministic per ordered pair, so the receiver
  // knows up front which sources must relay (Connect is idempotent and
  // punching is mutual — asking from this side costs nothing extra). The
  // loop below then only ever blocks on an inbox that can still deliver:
  // fully-punched phases never touch the KV relay, and once every punched
  // source completed, the fabric pop (which nothing will ever feed again)
  // is skipped instead of burning its full wait before each relay pop.
  int32_t punched_pending = 0;
  int32_t relay_pending = 0;
  for (int32_t s : sources) {
    FSD_ASSIGN_OR_RETURN(
        const bool punched,
        EnsureLink(env, &metrics, session, s, env->worker_id));
    pending[s].punched = punched;
    ++(punched ? punched_pending : relay_pending);
  }

  // Header decode and per-source bookkeeping (the poll loop's control
  // state) stay inline; the row decode for each pop batch is collected in
  // `bodies` and runs under the batch's deserialization window.
  std::vector<Bytes> bodies;
  auto consume = [&](const Bytes& value, bool billed) -> Status {
    if (billed) {
      // Relay pops bill the full value, header included — the cache
      // meters what it moved, not what the receiver could use.
      metrics.recv_billed_bytes += static_cast<int64_t>(value.size());
    }
    FSD_ASSIGN_OR_RETURN(DecodedInboxValue decoded, DecodeInboxValue(value));
    auto it = pending.find(decoded.source);
    if (it == pending.end()) {
      // Pops are destructive, so a duplicate can only mean a stray value
      // from a mis-scoped sender; count it like the other channels do.
      ++metrics.redundant_skipped;
      return Status::OK();
    }
    it->second.expected = decoded.total;
    ++it->second.got;
    metrics.recv_wire_bytes += static_cast<int64_t>(decoded.body.size());
    bodies.push_back(std::move(decoded.body));
    if (it->second.got == it->second.expected) {
      --(it->second.punched ? punched_pending : relay_pending);
      pending.erase(it);
    }
    return Status::OK();
  };

  auto decode_batch = [&](uint64_t popped_bytes) -> Status {
    const double deser_s =
        static_cast<double>(popped_bytes) / compute.deserialize_bytes_per_s;
    metrics.deserialize_s += deser_s;
    Status decoded_rows;
    std::function<void()> decode_fn;
    if (!bodies.empty()) {
      metrics.offload_calls += 1;
      metrics.offload_virtual_s += deser_s;
      decode_fn = [&]() {
        for (const Bytes& body : bodies) {
          decoded_rows = DecodeRows(body, &received);
          if (!decoded_rows.ok()) return;
        }
      };
    }
    const size_t before = received.size();
    FSD_RETURN_IF_ERROR(env->faas->OffloadFor(deser_s, std::move(decode_fn)));
    FSD_RETURN_IF_ERROR(decoded_rows);
    metrics.recv_rows += static_cast<int64_t>(received.size() - before);
    bodies.clear();
    return Status::OK();
  };

  while (!pending.empty()) {
    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_RETURN_IF_ERROR(env->faas->CheckDeadline());
    if (punched_pending > 0) {
      FSD_ASSIGN_OR_RETURN(
          std::vector<Bytes> values,
          env->cloud->p2p().BlockingPopAll(session, inbox,
                                           cloud::kMaxValuesPerInboxPop,
                                           options.direct_poll_wait_s));
      ++metrics.direct_pops;
      if (values.empty()) ++metrics.direct_empty_pops;
      uint64_t popped_bytes = 0;
      for (const Bytes& value : values) {
        popped_bytes += value.size();
        FSD_RETURN_IF_ERROR(consume(value, /*billed=*/false));
      }
      FSD_RETURN_IF_ERROR(decode_batch(popped_bytes));
    }
    if (pending.empty() || relay_pending == 0) continue;

    FSD_RETURN_IF_ERROR(env->CheckAbort());
    FSD_ASSIGN_OR_RETURN(
        std::vector<Bytes> relayed,
        env->cloud->kv().BlockingPopAll(relay, inbox, cloud::kMaxValuesPerPop,
                                        options.kv_poll_wait_s));
    ++metrics.kv_pops;
    if (relayed.empty()) ++metrics.kv_empty_pops;
    uint64_t popped_bytes = 0;
    for (const Bytes& value : relayed) {
      popped_bytes += value.size();
      FSD_RETURN_IF_ERROR(consume(value, /*billed=*/true));
    }
    FSD_RETURN_IF_ERROR(decode_batch(popped_bytes));
  }

  metrics.recv_wait_s += env->cloud->sim()->Now() - start;
  return received;
}

}  // namespace fsd::core
