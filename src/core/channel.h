// CommChannel: the fully serverless point-to-point communication abstraction
// (paper §III-A/B). Two production implementations exist — QueueChannel
// (FSD-Inf-Queue: pub-sub + per-worker queues) and ObjectChannel
// (FSD-Inf-Object: sharded object storage) — plus the degenerate serial case
// which performs no communication.
//
// The channel moves *phases* of activation rows. Phases 0..L-1 carry the
// x^{k-1} exchanges feeding each layer k; collective operations (barrier,
// reduce) reuse the same machinery under phase ids >= L, so MPI-style
// primitives (Send, Recv, Barrier, Reduce, Broadcast) all ride on one code
// path per backend.
#ifndef FSD_CORE_CHANNEL_H_
#define FSD_CORE_CHANNEL_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "common/result.h"
#include "core/fsd_config.h"
#include "core/metrics.h"
#include "core/serialization.h"
#include "linalg/spmm.h"

namespace fsd::core {

/// Per-worker execution environment threaded through channel calls.
struct WorkerEnv {
  cloud::FaasContext* faas = nullptr;
  cloud::CloudEnv* cloud = nullptr;
  const FsdOptions* options = nullptr;
  WorkerMetrics* metrics = nullptr;
  int32_t worker_id = 0;
  /// Set when any worker in the run failed; receive loops drain promptly
  /// instead of polling until their own runtime cap.
  const bool* abort = nullptr;

  Status CheckAbort() const {
    if (abort != nullptr && *abort) {
      return Status::Unavailable("run aborted by a failed peer");
    }
    return Status::OK();
  }
};

/// One phase send: ship the listed x rows (those present in the source map)
/// to `target`.
struct SendSpec {
  int32_t target = 0;
  const std::vector<int32_t>* rows = nullptr;
};

class CommChannel {
 public:
  virtual ~CommChannel() = default;
  virtual std::string_view name() const = 0;

  /// Dispatches one phase's sends. Non-blocking with respect to network
  /// time: the worker pays CPU (serialization/compression) and per-call
  /// dispatch overhead; transfers complete asynchronously so the caller can
  /// overlap communication with computation (Algorithms 1 & 2).
  virtual Status SendPhase(WorkerEnv* env, int32_t phase,
                           const linalg::ActivationMap& source,
                           const std::vector<SendSpec>& sends) = 0;

  /// Blocks until every worker in `sources` has delivered its phase data;
  /// returns the merged activation rows. Sources with nothing to send
  /// deliver an explicit empty marker (empty chunk / ".nul" object).
  virtual Result<linalg::ActivationMap> ReceivePhase(
      WorkerEnv* env, int32_t phase, const std::vector<int32_t>& sources) = 0;
};

/// Builds the channel implementation for a variant (nullptr for kSerial,
/// which performs no communication). One instance per worker: channels
/// carry per-worker receive state.
std::unique_ptr<CommChannel> MakeCommChannel(Variant variant);

/// Pre-creates the communication resources named by `options.channel_scope`
/// for the variant (topics/queues, buckets, or the KV namespace). Offline
/// step: not billed per request and not timed, matching the paper.
Status ProvisionChannelResources(cloud::CloudEnv* cloud,
                                 const FsdOptions& options);

/// Releases per-run channel resources. Queue/object resources are
/// request-priced and free to keep, so this is a no-op for them; the KV
/// namespace is deleted, which bills its node time.
Status TeardownChannelResources(cloud::CloudEnv* cloud,
                                const FsdOptions& options);

/// ---- shared send-side accounting (one definition across backends) ----
/// Every backend meters the same quantities on its send path: per-chunk
/// raw/wire bytes, serialization CPU split over the IPC lanes,
/// least-loaded-lane dispatch offsets for the async API calls, the
/// per-call dispatch overhead, and the service-billed bytes (including
/// billing-increment rounding). These helpers are that arithmetic,
/// verbatim — the ledger and the cost model's billed-byte counters must
/// stay byte-identical whichever backend runs them.

/// Accounts one encoded chunk on the send side (send_chunks, raw and wire
/// bytes); returns the chunk's raw bytes for the caller's
/// serialization-CPU accumulator.
inline uint64_t AccountSendChunk(LayerMetrics* metrics,
                                 const RowChunk& chunk) {
  metrics->send_chunks += 1;
  metrics->send_raw_bytes += static_cast<int64_t>(chunk.raw_bytes);
  metrics->send_wire_bytes += static_cast<int64_t>(chunk.wire.size());
  if (chunk.quant_bits != 0) {
    metrics->quant_chunks += 1;
    metrics->quant_values += chunk.quant_values;
    if (chunk.quant_err_max > metrics->quant_err_max) {
      metrics->quant_err_max = chunk.quant_err_max;
    }
  }
  return chunk.raw_bytes;
}

/// Billed increments for one request moving `bytes` bytes under a
/// `increment_bytes` billing granularity (>= 1 increment per request —
/// the pub-sub 64 KiB publish-chunk rule).
inline int64_t BilledIncrementChunks(uint64_t bytes,
                                     uint64_t increment_bytes) {
  const uint64_t chunks = (bytes + increment_bytes - 1) / increment_bytes;
  return static_cast<int64_t>(chunks > 0 ? chunks : 1);
}

/// Charges the serialization/compression CPU for `serialize_bytes` of
/// payload split over `items` parallel work items on the worker's IPC
/// lanes (the makespan lands in metrics->serialize_s and virtual time).
Status ChargeSerializeCpu(WorkerEnv* env, LayerMetrics* metrics,
                          uint64_t serialize_bytes, size_t items);

/// ChargeSerializeCpu with the real encode work offloaded under the
/// charged window (FaasContext::OffloadFor): `encode` runs on a compute
/// pool thread when the sim has compute_threads > 0, inline at the
/// window's end otherwise — byte-identical virtual behaviour either way.
/// Callers pass the serialize_bytes/items a PlanRows pre-pass computed and
/// move ALL post-encode work (chunk accounting, message building,
/// dispatch) after this call returns. A null `encode` degrades to
/// ChargeSerializeCpu exactly.
Status OffloadSerializeCpu(WorkerEnv* env, LayerMetrics* metrics,
                           uint64_t serialize_bytes, size_t items,
                           std::function<void()> encode);

/// Least-loaded-lane scheduler for asynchronous channel dispatch: each
/// call returns the virtual-time offset at which the next API call may
/// start on the least-loaded IPC lane, advancing that lane by the op's
/// median latency (the estimate; the true latency is sampled at dispatch).
class DispatchLanes {
 public:
  DispatchLanes(int32_t lanes, double op_estimate_s)
      : lane_free_(static_cast<size_t>(lanes > 1 ? lanes : 1), 0.0),
        estimate_(op_estimate_s) {}
  double NextOffset();

 private:
  std::vector<double> lane_free_;
  double estimate_;
};

/// The small per-call overhead the worker itself pays to hand `calls`
/// asynchronous API calls to its IPC pool (the round trips ride the
/// lanes, not the worker).
Status ChargeDispatchOverhead(WorkerEnv* env, size_t calls);

/// ---- phase-id layout shared by workers and collectives ----
/// A batch's phase budget is `layers` layer-exchange phases followed by
/// one reserved block per collective operation. Multi-round topologies
/// (binomial tree, ring) need a DISTINCT phase id per round — channels
/// key delivery on (phase, source), and the same ordered pair carries
/// different data in different rounds — so each block reserves the
/// topology's worst-case round count. The allocator replaces the old
/// fixed kPhaseBarrierArrive/kPhaseReduce/... constants; with the
/// through-root topology (1 round per op) it reproduces that legacy
/// layout exactly: arrive=L, release=L+1, reduce=L+2, broadcast=L+3.

/// The collective operations with reserved phase blocks, in block order.
enum class CollectiveOp : int {
  kBarrierArrive = 0,
  kBarrierRelease = 1,
  kReduce = 2,
  kBroadcast = 3,
};
inline constexpr int32_t kCollectiveOpCount = 4;

/// Worst-case send rounds one collective op needs under a topology at P
/// workers (also the per-op phase reservation).
int32_t CollectiveRounds(CollectiveTopology topology, int32_t num_workers);

/// One collective op's reserved block: `rounds` consecutive phase ids
/// starting at `first`; round r runs on phase first + r.
struct PhaseBlock {
  int32_t first = 0;
  int32_t rounds = 1;
  int32_t Round(int32_t r) const {
    assert(r >= 0 && r < rounds);
    return first + r;
  }
};

/// Lays out one batch's phase ids: layer phases [base, base+layers), then
/// kCollectiveOpCount disjoint per-op blocks of `rounds_per_op` phases
/// each. Disjointness is structural — every accessor asserts its index
/// stays inside its own region (debug builds).
class PhaseAllocator {
 public:
  PhaseAllocator(int32_t base, int32_t layers, int32_t rounds_per_op)
      : base_(base), layers_(layers), rounds_per_op_(rounds_per_op) {
    assert(layers_ >= 0 && rounds_per_op_ >= 1);
  }

  /// Phase carrying the x^{k-1} exchange feeding layer k.
  int32_t LayerPhase(int32_t k) const {
    assert(k >= 0 && k < layers_);
    return base_ + k;
  }

  /// The reserved block for one collective op.
  PhaseBlock Block(CollectiveOp op) const {
    const int32_t index = static_cast<int32_t>(op);
    assert(index >= 0 && index < kCollectiveOpCount);
    return PhaseBlock{base_ + layers_ + index * rounds_per_op_,
                      rounds_per_op_};
  }

  int32_t phases_per_batch() const {
    return layers_ + kCollectiveOpCount * rounds_per_op_;
  }

 private:
  int32_t base_;
  int32_t layers_;
  int32_t rounds_per_op_;
};

}  // namespace fsd::core

#endif  // FSD_CORE_CHANNEL_H_
