// ServingRuntime: concurrent multi-query serving on one simulated cloud.
//
// RunInference answers one query and drives the simulation to completion;
// a serving deployment instead faces a *stream* of queries whose executions
// overlap. ServingRuntime schedules each submitted request as its own
// client process inside one Simulation/CloudEnv, so in-flight queries
// interleave exactly as concurrent Lambda fleets do:
//
//  - FaaS warm pools are shared: all queries of one function group (same
//    worker memory/timeout) run behind ONE registered function, so an
//    instance freed by query i serves query j warm. Payloads carry
//    (run_id, worker_id) and the shared handler dispatches to the right
//    run's state.
//  - Channels stay isolated: every query gets a channel_scope prefixing
//    its topics/queues/buckets, so overlapping queries can never
//    cross-deliver activation rows (the FMI lesson: shared communication
//    machinery must stay correct under many concurrent groups).
//  - Billing is shared: per-query "actual" dollars are not separable on a
//    concurrent ledger, so the report carries the workload-level ledger
//    delta plus per-query cost-model attributions.
//  - Warm state is reused: because function groups share warm pools, a
//    worker instance freed by one query carries its instance-local
//    PartitionCache into the next query it serves — repeated queries of
//    one model family skip their model-share reads (FleetStats reports
//    the hit ratio and bytes saved). The cache budget is part of the
//    function-group key, so queries with different
//    partition_cache_budget_bytes never share warm instances (an
//    instance's cache is created by whichever run touches it first).
//
// Submitted request pointers (model, partition, batches) must stay alive
// until Drain() returns.
#ifndef FSD_CORE_SERVING_H_
#define FSD_CORE_SERVING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "core/runtime.h"
#include "core/worker.h"

namespace fsd::core {

struct ServingOptions {
  /// Register one worker/coordinator function per (memory, timeout) group
  /// instead of per query: enables warm-start reuse across queries.
  /// Disabling reproduces the one-function-per-run behaviour (ablation).
  bool share_functions = true;
  /// Abort every in-flight and future query as soon as one fails.
  bool stop_on_failure = false;
  /// Stop the simulation at this virtual time even if queries are still in
  /// flight (< 0 runs to completion). Unfinished queries report errors.
  double run_until = -1.0;
};

/// One query's result within a workload.
struct QueryOutcome {
  uint64_t query_id = 0;
  double arrival_s = 0.0;  ///< virtual submission time
  double finish_s = 0.0;   ///< virtual completion time
  InferenceReport report;  ///< latency_s measured from submission
};

struct ServingReport {
  std::vector<QueryOutcome> queries;  ///< in submission order
  FleetStats fleet;
  BillingDelta billing;  ///< whole-workload ledger delta
};

class ServingRuntime {
 public:
  explicit ServingRuntime(cloud::CloudEnv* cloud,
                          ServingOptions options = {});

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Schedules `request` to arrive at virtual time `arrival_s` (relative to
  /// the simulation clock at submission). Validates and provisions
  /// immediately; execution happens during Drain(). Returns the query id.
  Result<uint64_t> Submit(const InferenceRequest& request, double arrival_s);

  /// Drives the simulation until all submitted queries completed (or a
  /// virtual-time horizon) and aggregates per-query and fleet results.
  /// `run_until` overrides options_.run_until for this call (pass a later
  /// absolute time — or a negative value for run-to-completion — to resume
  /// queries a previous horizon cut off). May be called repeatedly; the
  /// report covers all queries submitted so far, `billing` is the ledger
  /// delta since the previous call, and fleet dollar figures accumulate
  /// across calls.
  Result<ServingReport> Drain();
  Result<ServingReport> Drain(double run_until);

  /// Marks every unfinished query aborted so in-flight workers drain
  /// promptly instead of blocking on peers (kill path).
  void AbortAll();

  int32_t queries_submitted() const {
    return static_cast<int32_t>(queries_.size());
  }

 private:
  struct Query {
    std::unique_ptr<RunState> state;
    QueryOutcome outcome;
    bool finished = false;
  };

  /// Registers (once) and names the shared worker/coordinator pair for the
  /// request's function group.
  Result<std::string> EnsureWorkerFunction(const FsdOptions& options);
  Result<std::string> EnsureCoordinatorFunction(const FsdOptions& options);

  cloud::CloudEnv* cloud_;
  ServingOptions options_;
  uint64_t instance_id_ = 0;  ///< uniques function names on a shared cloud
  std::map<uint64_t, std::unique_ptr<Query>> queries_;  ///< by run id
  std::vector<uint64_t> submission_order_;
  std::map<std::string, std::string> function_groups_;  ///< group -> name
  double accumulated_cost_ = 0.0;  ///< workload dollars across Drain calls
};

/// Poisson arrival process: `count` arrival times with exponential
/// inter-arrival gaps at `rate_qps` (deterministic per seed).
std::vector<double> PoissonArrivals(double rate_qps, int32_t count,
                                    uint64_t seed);

/// Burst trace: `bursts` groups of `per_burst` arrivals `gap_s` apart, with
/// queries inside a burst arriving simultaneously (+ arrivals start at
/// `start_s`). Models the sporadic traffic of the paper's motivating
/// scenario.
std::vector<double> BurstArrivals(int32_t bursts, int32_t per_burst,
                                  double gap_s, double start_s = 0.0);

}  // namespace fsd::core

#endif  // FSD_CORE_SERVING_H_
