// ServingRuntime: concurrent multi-query serving on one simulated cloud.
//
// RunInference answers one query and drives the simulation to completion;
// a serving deployment instead faces a *stream* of queries whose executions
// overlap. ServingRuntime schedules each submitted request as its own
// client process inside one Simulation/CloudEnv, so in-flight queries
// interleave exactly as concurrent Lambda fleets do:
//
//  - FaaS warm pools are shared: all queries of one function group (same
//    worker memory/timeout) run behind ONE registered function, so an
//    instance freed by query i serves query j warm. Payloads carry
//    (run_id, worker_id) and the shared handler dispatches to the right
//    run's state.
//  - Channels stay isolated: every run gets a channel_scope prefixing
//    its topics/queues/buckets, so overlapping runs can never
//    cross-deliver activation rows (the FMI lesson: shared communication
//    machinery must stay correct under many concurrent groups).
//  - Billing is shared: per-query "actual" dollars are not separable on a
//    concurrent ledger, so the report carries the workload-level ledger
//    delta plus per-query cost-model attributions.
//  - Warm state is reused: because function groups share warm pools, a
//    worker instance freed by one query carries its instance-local
//    PartitionCache into the next query it serves — repeated queries of
//    one model family skip their model-share reads (FleetStats reports
//    the hit ratio and bytes saved). The cache budget is part of the
//    function-group key, so queries with different
//    partition_cache_budget_bytes never share warm instances (an
//    instance's cache is created by whichever run touches it first).
//  - Concurrent same-family queries are batched: with batch_window_s > 0,
//    queries whose requests could run in one worker tree (same model,
//    partition and execution options) and whose arrivals fall inside the
//    window coalesce into ONE run whose batch list is the concatenation
//    of the members' batches. The tree is launched once (P invocations,
//    P model-share loads) and processes every member's batches; the root
//    slices outputs back per query, metrics and cost are attributed per
//    member (exact per batch, batch-share for tree-level costs), and each
//    QueryOutcome's latency runs from its own submission — the coalescing
//    wait is visible as queue_wait_s, never hidden. Outputs are
//    byte-identical to unbatched serving: the FSI loop is per batch, so
//    concatenation changes WHEN a batch runs, never its values.
//  - Scheduling is an explicit four-stage pipeline: Admission ->
//    QueuePolicy -> Batcher -> Dispatcher (core/scheduler.h), each a small
//    pluggable policy. With admission_control on, an arrival is admitted,
//    rejected (typed QueryOutcome::disposition + reject_reason) or traded
//    against a shed lower-priority queue member, based on the cost model's
//    sustainable-throughput estimate refined by live EWMAs of observed run
//    times. Queries carry optional SLO deadlines and priority classes
//    (FsdOptions::slo_deadline_s / priority): the batcher generalizes the
//    fixed window into deadline-slack flushing, and with
//    max_concurrent_runs > 0 flushed batches park in queue-discipline
//    order (FIFO or EDF) until a finishing tree hands its slot over.
//    Every pipeline knob defaults off, reproducing the unconditional
//    accept-and-window behaviour byte-identically.
//
// Submitted request pointers (model, partition, batches) must stay alive
// until Drain() returns.
#ifndef FSD_CORE_SERVING_H_
#define FSD_CORE_SERVING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/cloud.h"
#include "core/runtime.h"
#include "core/scheduler.h"
#include "core/worker.h"

namespace fsd::core {

struct ServingOptions {
  /// Register one worker/coordinator function per (memory, timeout) group
  /// instead of per query: enables warm-start reuse across queries.
  /// Disabling reproduces the one-function-per-run behaviour (ablation).
  bool share_functions = true;
  /// Abort every in-flight and future query as soon as one fails.
  bool stop_on_failure = false;
  /// Stop the simulation at this virtual time even if queries are still in
  /// flight (< 0 runs to completion). Unfinished queries report errors.
  double run_until = -1.0;

  /// --- cross-query batching ---
  /// How long the first query of a batch family waits for same-family
  /// peers before its worker tree launches. 0 disables batching entirely
  /// (every query runs its own tree — the pre-batching behaviour).
  double batch_window_s = 0.0;
  /// Most queries one shared tree may serve; a full batch flushes
  /// immediately instead of waiting out the window.
  int32_t max_batch_queries = 8;
  /// Cap on the summed sample columns of a shared tree's batches (bounds
  /// worker working-set growth); a batch at the cap flushes immediately.
  int32_t max_batch_cols = 8192;

  /// --- scheduler pipeline (Admission -> QueuePolicy -> Batcher ->
  /// Dispatcher; see core/scheduler.h) ---
  /// Enable SLO-aware admission control: arriving queries are admitted,
  /// rejected (QueryDisposition::kRejected with a typed reason) or traded
  /// against a shed queue member, instead of queueing unconditionally.
  /// Off (the default) reproduces the accept-everything behaviour
  /// byte-identically, including Submit-time provisioning on the
  /// unbatched path.
  bool admission_control = false;
  /// Most queries that may sit admitted-but-unlaunched at once (counting
  /// open coalescing batches and runs parked on dispatch slots); arrivals
  /// beyond it are rejected or shed per `shed_policy`. 0 = no depth bound.
  int32_t max_queue_depth = 64;
  /// Reject arrivals whose predicted queue wait (queued / sustainable
  /// throughput from the cost model's a-priori estimate, EWMA-refined)
  /// exceeds this bound. < 0 = no wait bound.
  double max_queue_wait_s = -1.0;
  /// What yields when the queue is at its depth bound.
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Launch order of queued work (and of runs parked on dispatch slots).
  QueueDiscipline queue_discipline = QueueDiscipline::kFifo;
  /// Most worker trees in flight at once (the account-level FaaS
  /// concurrency limit divided by tree size); flushed batches beyond it
  /// park in `queue_discipline` order until a slot frees. 0 = unbounded
  /// (the pre-scheduler behaviour: every flush launches immediately).
  int32_t max_concurrent_runs = 0;

  /// Custom policy injection; null slots are materialized from the knobs
  /// above (MakeDepthBoundAdmission / MakeQueuePolicy /
  /// MakeDeadlineBatchPolicy). The built-in batcher already generalizes
  /// the fixed window into deadline-slack flushing.
  std::shared_ptr<AdmissionPolicy> admission_policy;
  std::shared_ptr<QueuePolicy> queue_policy;
  std::shared_ptr<BatchPolicy> batch_policy;

  /// Per-tenant admission quotas (token-bucket rate limits and fair queue
  /// shares; see MakeTenantQuotaAdmission). Non-empty wraps the admission
  /// policy above — and switches the runtime onto the scheduler pipeline
  /// even when `admission_control` is off, so quota rejections apply to
  /// every arrival. Tenants not listed here are never quota-limited.
  std::vector<TenantQuota> tenant_quotas;

  /// --- λScale-style fast scaling (core/share_distributor.h) ---
  /// Serve cold model-share loads peer-to-peer from warm holders before
  /// paying the object-storage front door: a flash crowd's P concurrent
  /// cold loads of one share collapse to ~1 storage read plus P-1 peer
  /// transfers multicast down `share_multicast_topology`. Off (the
  /// default) keeps the storage-only cold path byte-identically; on, the
  /// outputs are unchanged — only WHERE share bytes come from moves.
  bool peer_share_transfer = false;
  /// Multicast shape for concurrent requesters of one share.
  CollectiveTopology share_multicast_topology =
      CollectiveTopology::kBinomialTree;
  /// Predictively pre-warm worker instances (invoke + load shares) when a
  /// family's EWMA arrival rate says the warm pool will not cover the
  /// incoming demand — capacity stands up BEFORE the queue forms.
  bool predictive_prewarm = false;
  /// Hard cap on the dollars the pre-warm loop may commit (its invocation
  /// + share-load estimates accumulate against this; see
  /// FleetStats::prewarm_budget_spent). <= 0 disables pre-warming even
  /// with `predictive_prewarm` on.
  double prewarm_budget_dollars = 0.05;
  /// Custom pre-warm policy; null materializes MakeRatePreWarmPolicy.
  std::shared_ptr<PreWarmPolicy> prewarm_policy;
};

/// One query's result within a workload.
struct QueryOutcome {
  uint64_t query_id = 0;
  double arrival_s = 0.0;  ///< virtual submission time
  double finish_s = 0.0;   ///< virtual completion time
  /// Submission -> worker-tree launch (the batching window wait; 0 when
  /// the query ran unbatched). Included in report.latency_s.
  double queue_wait_s = 0.0;
  uint64_t run_id = 0;     ///< the worker tree that served this query
  int32_t batch_peers = 1; ///< queries sharing that tree (1 = ran alone)
  /// Typed terminal state. Exactly one disposition applies; kRejected and
  /// kShed carry `reject_reason` and never launched (run_id stays 0).
  QueryDisposition disposition = QueryDisposition::kInFlight;
  std::string reject_reason;
  /// SLO class (copied from the request's FsdOptions at submission).
  int32_t priority = 0;
  /// Tenant the query billed under (copied from the request's FsdOptions
  /// at submission; 0 = default tenant).
  int32_t tenant = 0;
  /// Absolute deadline (arrival + slo_deadline_s); kNoDeadline when the
  /// query carried none.
  double deadline_s = kNoDeadline;
  /// Whether a completed query finished by its deadline (true when it
  /// carried none); meaningless for other dispositions.
  bool deadline_met = true;
  InferenceReport report;  ///< latency_s measured from submission
};

struct ServingReport {
  std::vector<QueryOutcome> queries;  ///< in submission order
  FleetStats fleet;
  BillingDelta billing;  ///< whole-workload ledger delta
};

class ServingRuntime {
 public:
  explicit ServingRuntime(cloud::CloudEnv* cloud,
                          ServingOptions options = {});
  /// Tears down the share distributor (deleting its fabric session and
  /// relay namespace — the relay's node-seconds bill lands here, AFTER any
  /// Drain() measured its window).
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Schedules `request` to arrive at virtual time `arrival_s` (relative to
  /// the simulation clock at submission). Validates immediately; execution
  /// happens during Drain(). Without batching or scheduling (no admission
  /// control, unbounded dispatcher) the run is provisioned immediately;
  /// on the pipeline path (batching, admission control, or a dispatch
  /// bound) provisioning is deferred until the query is admitted and its
  /// batch flushes into a slot — a rejected query never provisions
  /// anything. Returns the query id.
  Result<uint64_t> Submit(const InferenceRequest& request, double arrival_s);

  /// Drives the simulation until all submitted queries completed (or a
  /// virtual-time horizon) and aggregates per-query and fleet results.
  /// `run_until` overrides options_.run_until for this call (pass a later
  /// absolute time — or a negative value for run-to-completion — to resume
  /// queries a previous horizon cut off). May be called repeatedly; the
  /// report covers all queries submitted so far, `billing` is the ledger
  /// delta since the previous call, and fleet dollar figures accumulate
  /// across calls.
  Result<ServingReport> Drain();
  Result<ServingReport> Drain(double run_until);

  /// Marks every unfinished query aborted so in-flight workers drain
  /// promptly instead of blocking on peers (kill path). Queries still
  /// waiting in a batch window abort when their batch flushes.
  void AbortAll();

  int32_t queries_submitted() const {
    return static_cast<int32_t>(queries_.size());
  }

 private:
  struct Query {
    InferenceRequest request;  ///< kept for deferred (batched) preparation
    QueryOutcome outcome;
    RunState* state = nullptr;  ///< set once the query's run exists
    bool aborted = false;
    bool finished = false;
    /// Admitted but not yet launched (in an open coalescing batch or a
    /// parked run) — the shed-victim pool and the admission queue depth.
    bool queued = false;
  };

  /// One worker tree (possibly serving several coalesced queries).
  struct Run {
    std::unique_ptr<RunState> state;
    std::vector<uint64_t> member_ids;  ///< queries, in batch order
    std::string coordinator_function;
    bool finished = false;
    bool ok = false;
    int64_t worker_invocations = 0;
    int64_t cold_starts = 0;
  };

  /// Same-family queries waiting out the batching window together.
  struct PendingBatch {
    std::string family;
    std::vector<uint64_t> member_ids;
    int64_t total_cols = 0;
    /// When the batcher wants this batch launched (absolute virtual time):
    /// open time + window, tightened whenever a joining member's deadline
    /// slack demands an earlier flush.
    double flush_at = 0.0;
    /// True once the batch must launch immediately (size caps hit). The
    /// window process re-checks it after every wake.
    bool flush_due = false;
    /// Fired to wake the window process early: the batch filled, or a
    /// joining member tightened flush_at (signals are one-shot, so
    /// tightening installs a fresh one before firing the old).
    std::shared_ptr<sim::SimSignal> flush_now;
  };

  /// A flushed batch waiting for a dispatch slot (stage 4). Its flush
  /// process blocks on `wake`; a finishing run hands its slot over by
  /// firing `wake` with `granted` set, and shedding the last member fires
  /// it unset so the process unwinds without launching.
  struct ParkedRun {
    std::vector<uint64_t> member_ids;
    std::shared_ptr<sim::SimSignal> wake;
    bool granted = false;
    bool woken = false;
  };

  /// Registers (once) and names the shared worker/coordinator pair for the
  /// request's function group.
  Result<std::string> EnsureWorkerFunction(const FsdOptions& options);
  Result<std::string> EnsureCoordinatorFunction(const FsdOptions& options);

  /// Builds the (possibly multi-member) run: merges the member requests,
  /// provisions channels, registers functions, and stores the Run.
  Result<Run*> BuildRun(uint64_t run_id,
                        const std::vector<uint64_t>& member_ids);
  /// Runs one worker tree to completion and collects every member's
  /// report. Must be called from inside a simulation process.
  void ExecuteRun(Run* run);
  /// Stage 1+2 entry, run at a query's virtual arrival time on the
  /// pipeline path: stamps the absolute deadline, consults the admission
  /// policy (reject / shed a victim / admit), then hands the query to the
  /// batcher or straight to the dispatcher.
  void ArriveQuery(uint64_t query_id);
  /// Whether arrivals route through the scheduler pipeline's admission
  /// stage: the explicit knob, an injected policy, or tenant quotas.
  bool AdmissionEnabled() const;
  /// Called at a query's virtual arrival time (batching path): joins or
  /// opens the family's pending batch, flushing on size caps.
  void JoinBatch(uint64_t query_id);
  /// Flushes batch `batch_id` (if still pending) into the dispatcher.
  void FlushBatch(uint64_t batch_id);
  /// Stage 4: launches the members' run when a dispatch slot is free,
  /// otherwise parks in queue-policy order until a finishing run hands its
  /// slot over. Runs in the calling process.
  void DispatchRun(std::vector<uint64_t> member_ids);
  /// Builds and executes one run (the flushed members) in this process.
  void LaunchRun(const std::vector<uint64_t>& member_ids);
  /// Hands the calling run's dispatch slot to the best parked run (per the
  /// queue policy) or frees it.
  void ReleaseSlot();
  /// Marks `victim` shed (QueryDisposition::kShed) and removes it from its
  /// open batch or parked run.
  void ShedQuery(uint64_t victim_id, const std::string& reason);
  void RejectQuery(Query* query, const std::string& reason);
  void FailQueries(const std::vector<uint64_t>& ids, const Status& status,
                   QueryDisposition disposition);
  /// Clears a query's queued flag (and the depth counter) when it leaves
  /// the admitted-but-unlaunched set.
  void Dequeue(Query* query);

  /// One pending pre-warm invocation: everything the shared worker handler
  /// needs to load one partition's share into whatever instance the
  /// invocation lands on (no RunState exists for a pre-warm — the payload's
  /// run id names this task instead).
  struct PrewarmTask {
    FsdOptions options;  ///< defaulted (worker memory) request options
    std::string rate_key;  ///< FamilyRate entry to credit on landing
    std::string cache_family;
    const model::SparseDnn* dnn = nullptr;
    const part::ModelPartition* partition = nullptr;
    int32_t partition_id = 0;
    uint64_t share_bytes = 0;
  };

  /// Per-family arrival bookkeeping feeding the pre-warm policy: the
  /// arrival-rate EWMA (coincident arrivals of one burst batch into the
  /// next gap's rate sample) and the round-robin partition cursor spreading
  /// pre-warm loads across the family's P shares.
  struct FamilyRate {
    double ewma_qps = 0.0;
    double last_arrival_s = -1.0;
    int32_t coincident = 0;        ///< arrivals seen at last_arrival_s
    uint64_t next_partition = 0;   ///< round-robin pre-warm share cursor
    int32_t pending_prewarms = 0;  ///< invocations fired, not yet landed
  };

  /// The distributor is created on first use (peer_share_transfer or a
  /// pre-warm with publication); scope-uniqued per runtime instance.
  ShareDistributor* EnsureShareDistributor();
  /// Stage 0, ahead of admission: refreshes the query family's arrival
  /// EWMA and lets the pre-warm policy stand up capacity for it.
  void ObserveArrival(uint64_t query_id);
  void MaybePrewarm(const Query& query, FamilyRate* rate);
  /// Handler body for one pre-warm invocation (dispatched by the shared
  /// worker handler when the payload names a pre-warm task, not a run):
  /// loads the task's share into this instance's cache marked pre-warmed,
  /// preferring a peer transfer, and publishes the instance as a holder.
  void RunPrewarmTask(cloud::FaasContext* ctx, uint64_t task_id);

  /// Scheduler views/inputs: the queued set as plain SchedQuery structs,
  /// the live load snapshot for admission, the batcher's flush timeout,
  /// and the per-tree execution-time estimate (EWMA of observed runs,
  /// seeded by the cost model's a-priori estimate per family).
  SchedQuery SchedView(const Query& query) const;
  std::vector<SchedQuery> QueuedSnapshot() const;
  LoadSnapshot BuildLoadSnapshot(const Query& query);
  double FlushTimeout(const PendingBatch& batch);
  double EstRunSeconds(const Query& query);
  /// Refreshes the run-time/occupancy/service-rate EWMAs after a
  /// successful run.
  void UpdateLiveStats(const Run& run, double launch_s, double finish_s);

  cloud::CloudEnv* cloud_;
  ServingOptions options_;
  uint64_t instance_id_ = 0;  ///< uniques function names on a shared cloud
  std::map<uint64_t, std::unique_ptr<Query>> queries_;  ///< by query id
  std::map<uint64_t, std::unique_ptr<Run>> runs_;       ///< by run id
  std::vector<uint64_t> submission_order_;
  std::map<std::string, std::string> function_groups_;  ///< group -> name
  std::map<uint64_t, PendingBatch> pending_batches_;    ///< by batch id
  std::map<std::string, uint64_t> open_batch_by_family_;
  std::set<uint64_t> queued_ids_;  ///< admitted, not yet launched
  uint64_t next_batch_id_ = 0;
  double accumulated_cost_ = 0.0;  ///< workload dollars across Drain calls

  /// --- scheduler pipeline state ---
  std::shared_ptr<AdmissionPolicy> admission_;
  std::shared_ptr<QueuePolicy> queue_policy_;
  std::shared_ptr<BatchPolicy> batcher_;
  DispatchGate gate_;
  std::map<uint64_t, ParkedRun> parked_;  ///< by park sequence (FIFO ties)
  uint64_t next_park_seq_ = 0;
  /// Live estimates feeding admission and the batcher: per-tree execution
  /// time (EWMA over completed runs, a-priori-seeded), expected occupancy,
  /// and the observed service rate.
  double ewma_run_s_ = 0.0;
  bool ewma_run_seeded_ = false;
  double ewma_occupancy_ = 1.0;
  double ewma_service_rate_qps_ = 0.0;
  double last_run_finish_s_ = -1.0;
  std::map<std::string, double> apriori_run_s_by_family_;

  /// --- λScale fast scaling state ---
  std::unique_ptr<ShareDistributor> share_distributor_;
  std::shared_ptr<PreWarmPolicy> prewarm_;
  std::map<std::string, FamilyRate> family_rates_;  ///< by batch family
  std::map<uint64_t, PrewarmTask> prewarm_tasks_;   ///< by task id
  /// Pre-warm aggregates surfaced through FleetStats (the loop runs
  /// outside any query's tree, so nothing here is query-attributed).
  double prewarm_budget_spent_ = 0.0;
  int32_t prewarm_invocations_ = 0;
  int64_t prewarm_storage_parts_ = 0;
  int64_t prewarm_storage_bytes_ = 0;
  int64_t prewarm_peer_connects_ = 0;
  int64_t prewarm_peer_bytes_ = 0;
  int64_t prewarm_relay_requests_ = 0;
  int64_t prewarm_relay_bytes_ = 0;
};

/// Poisson arrival process: `count` arrival times with exponential
/// inter-arrival gaps at `rate_qps` (deterministic per seed).
std::vector<double> PoissonArrivals(double rate_qps, int32_t count,
                                    uint64_t seed);

/// Burst trace: `bursts` groups of `per_burst` arrivals `gap_s` apart, with
/// queries inside a burst arriving simultaneously (+ arrivals start at
/// `start_s`). Models the sporadic traffic of the paper's motivating
/// scenario.
std::vector<double> BurstArrivals(int32_t bursts, int32_t per_burst,
                                  double gap_s, double start_s = 0.0);

}  // namespace fsd::core

#endif  // FSD_CORE_SERVING_H_
