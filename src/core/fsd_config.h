// FSD-Inference runtime configuration (paper §III, §VI-A1).
#ifndef FSD_CORE_FSD_CONFIG_H_
#define FSD_CORE_FSD_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "codec/lz.h"

namespace fsd::core {

/// The three FSD-Inference variants evaluated in the paper, plus the
/// in-memory KV extension (FMI-style low-latency channel) and the direct
/// worker-to-worker extension (FMI's NAT-punched TCP links).
enum class Variant : int {
  kSerial = 0,  ///< single FaaS instance, no communication (FSD-Inf-Serial)
  kQueue = 1,   ///< pub-sub + queueing channel (FSD-Inf-Queue)
  kObject = 2,  ///< object storage channel (FSD-Inf-Object)
  kKv = 3,      ///< in-memory KV channel (FSD-Inf-KV)
  kDirect = 4,  ///< NAT-punched direct links + KV relay (FSD-Inf-Direct)
};

std::string_view VariantName(Variant variant);

/// Collective-algorithm topologies (FMI-style). Every topology computes the
/// same Barrier/Reduce/Broadcast results — Reduce is a disjoint-row-set
/// union, so the merge order is immaterial — but they trade per-round
/// message counts against round counts:
///   through-root: 1 round, the root handles P-1 messages (the paper's
///                 star pattern);
///   binomial:     ceil(log2 P) rounds, each worker handles <= 1 message
///                 per round;
///   ring:         P-1 rounds, 1 message per round (chain pipeline).
enum class CollectiveTopology : int {
  kThroughRoot = 0,
  kBinomialTree = 1,
  kRing = 2,
};

std::string_view CollectiveTopologyName(CollectiveTopology topology);

/// Launch-tree construction strategies (§III; hierarchical is the paper's
/// contribution, the others are the ablation baselines it was measured
/// against).
enum class LaunchStrategy : int {
  kHierarchical = 0,  ///< each worker invokes its subtree (branching factor b)
  kTwoLevel = 1,      ///< root invokes "managers" which invoke leaves
  kCentralized = 2,   ///< coordinator invokes every worker in one loop
};

std::string_view LaunchStrategyName(LaunchStrategy strategy);

/// NOTE: when adding a field here, also add it to the serving runtime's
/// BatchFamilyKey (serving.cc) — the cross-query batching aggregator may
/// only coalesce queries whose options fully agree, and the key is an
/// explicit field enumeration.
struct FsdOptions {
  Variant variant = Variant::kQueue;
  /// P: concurrent FaaS workers (the model must be partitioned for this P).
  int32_t num_workers = 8;
  /// Branching factor of the hierarchical invocation tree.
  int32_t branching = 4;
  LaunchStrategy launch = LaunchStrategy::kHierarchical;

  /// Communication resource sharding (paper uses 10 of each: topic-{m%10},
  /// bucket-{n%10}).
  int32_t num_topics = 10;
  int32_t num_buckets = 10;

  /// Prefix namespacing every channel resource (topics, queues, buckets) of
  /// a run. Empty reproduces the paper's shared names; the serving runtime
  /// assigns a per-query scope so concurrent queries cannot cross-deliver.
  std::string channel_scope;

  /// IPC thread-pool lanes per worker (ThreadPoolExecutor in the paper).
  int32_t io_lanes = 8;

  /// SQS long-poll wait W in seconds (0 selects short polling).
  double poll_wait_s = 5.0;
  /// Back-off between object-store folder scans while data is outstanding.
  double object_scan_interval_s = 0.02;

  /// Per-message payload cap for the queue channel. Slightly under the
  /// 256 KiB publish cap to leave room for attributes/envelope.
  uint64_t max_message_bytes = 224 * 1024;
  /// Pack multiple row chunks per publish batch (NNZ-heuristic greedy
  /// packing); disabled = one message per publish (ablation).
  bool greedy_packing = true;

  /// Compress payloads (FsdLz, the paper's ZLIB stage); ablation knob.
  bool compress = true;
  /// Moderate match effort by default (zlib level ~6 equivalent): channel
  /// payloads are latency-sensitive, and ratio gains flatten quickly on
  /// sparse-row data.
  codec::LzOptions codec{.max_chain_probes = 8};
  /// Bounded-error activation transport: quantize payload values to this
  /// many bits (2..16) before entropy coding. 0 keeps the default lossless
  /// wire format (bit-exact round trip). Quantization changes query
  /// outputs within codec::QuantRelErrorBound(quant_bits) of each chunk's
  /// max |value|, so it must be opted into per workload — either directly
  /// or by AutoSelectConfiguration when quant_max_rel_error permits.
  int32_t quant_bits = 0;
  /// Relative-error budget that authorizes AutoSelectConfiguration to turn
  /// quantization on: the widest-saving width whose QuantRelErrorBound
  /// fits the budget is selected when the cost model predicts a net win.
  /// <= 0 keeps auto-config lossless (the default).
  double quant_max_rel_error = 0.0;

  /// Skip 0-byte ".nul" markers when reading (object channel optimization;
  /// ablation knob).
  bool nul_markers = true;

  /// KV channel: per-value payload cap (in-memory caches favor small
  /// items; large values monopolize a cluster slot).
  uint64_t kv_max_value_bytes = 128 * 1024;
  /// Blocking-pop wait for the KV channel (BLPOP timeout analogue). Short
  /// relative to poll_wait_s: KV wakeups are cheap, and short waits keep
  /// abort draining prompt.
  double kv_poll_wait_s = 1.0;
  /// Cluster shards of the per-run KV namespace (raises the aggregate
  /// request-rate cap, like topic/bucket sharding).
  int32_t kv_shards = 4;

  /// Topology the collective operations (barrier/reduce/broadcast tails of
  /// each batch) run over. Through-root reproduces the paper's star
  /// pattern; binomial/ring bound the root's per-round fan-in at the price
  /// of extra rounds (each round consumes its own phase id, so the
  /// per-batch phase budget grows with the topology's round count).
  CollectiveTopology collective_topology = CollectiveTopology::kThroughRoot;

  /// Direct channel (FSD-Inf-Direct): blocking-pop wait against the P2P
  /// fabric inbox. The receive loop alternates fabric and KV-relay pops,
  /// so both waits stay short to keep abort draining prompt.
  double direct_poll_wait_s = 0.5;

  /// --- cross-query partition cache (λScale-style warm-state reuse) ---
  /// A warm worker instance that already deserialized its model share for
  /// an earlier query of the same family skips the object-storage read.
  /// Off reproduces the paper's every-query-reads behaviour (ablation).
  bool partition_cache = true;
  /// Per-instance byte budget for cached shares; LRU eviction beyond it.
  /// The effective budget is additionally capped at half the worker
  /// instance's memory (a 1000 MB function cannot keep 2 GiB of shares
  /// resident), so this default simply means "as much as the instance
  /// affords". 0 disables caching outright.
  uint64_t partition_cache_budget_bytes = 2ull * 1024 * 1024 * 1024;
  /// Identity of the model this request serves. Queries sharing a family
  /// (and version) may reuse each other's cached shares, so the family
  /// must uniquely identify the weights. Empty derives a stable identity
  /// from the full generator config in PrepareRunState; either way the
  /// runtime additionally qualifies the family with a fingerprint of the
  /// partition layout, so different partitionings never alias.
  std::string model_family;
  /// Version of the family's weights. Bump on any weight update: a warm
  /// instance holding a share of another version invalidates it and
  /// re-reads (stale weights must never serve).
  uint64_t model_version = 0;

  /// --- serving SLO class (scheduler pipeline; see core/scheduler.h) ---
  /// Pure scheduling metadata: these knobs never reach the RunState, so
  /// they are deliberately NOT part of the serving BatchFamilyKey —
  /// queries in different SLO classes (or of different tenants) still
  /// coalesce into shared trees.
  /// Relative SLO deadline in seconds from submission (<= 0 = none). The
  /// serving runtime turns it into an absolute deadline at arrival: the
  /// EDF queue policy orders by it, the batcher flushes a coalescing batch
  /// early when the oldest member's slack (deadline minus predicted
  /// execution time) runs out, and FleetStats reports attainment.
  double slo_deadline_s = 0.0;
  /// Scheduling priority class (higher = more important). Under overload
  /// with ShedPolicy::kShedLowestPriority, queued low-priority queries are
  /// shed to admit higher-priority arrivals; FleetStats reports latency
  /// percentiles per class.
  int32_t priority = 0;
  /// Tenant this query bills/schedules under (0 = the default tenant).
  /// Scheduling metadata like the two knobs above: the tenant-quota
  /// admission stage (MakeTenantQuotaAdmission) rate-limits and
  /// fair-shares per tenant, and FleetStats reports a per-tenant
  /// disposition/latency breakdown — but the worker tree never sees it,
  /// so cross-tenant queries of one model family still batch together.
  int32_t tenant_id = 0;

  /// --- cross-query batching (serving-layer coalescing) ---
  /// Whether the serving runtime's batch aggregator may coalesce this
  /// query with concurrent same-family queries into one shared worker
  /// tree (ServingOptions::batch_window_s must also be > 0). Opt out for
  /// latency-critical queries that must never wait out a coalescing
  /// window behind peers. Per-query outputs are byte-identical either
  /// way; only scheduling and cost attribution change.
  bool cross_query_batching = true;

  /// Worker function sizing. <= 0 selects the paper's schedule via
  /// DefaultWorkerMemoryMb(neurons).
  int32_t worker_memory_mb = 0;
  double worker_timeout_s = 900.0;
  /// Coordinator function memory (lightweight parser/launcher).
  int32_t coordinator_memory_mb = 128;

  uint64_t seed = 1234;
};

/// The paper's memory schedule: 1000/1500/2000/4000 MB for
/// N = 1024/4096/16384/65536; FSD-Inf-Serial uses the 10240 MB maximum.
int32_t DefaultWorkerMemoryMb(int32_t neurons, Variant variant);

/// S3 multipart read chunk used when streaming a model share from object
/// storage. Shared by the worker read path and the cost model's GET
/// sizing: one billed GET per started part.
inline constexpr uint64_t kModelReadPartBytes = 16ull * 1024 * 1024;

/// Billed multipart GETs for a share of `share_bytes` bytes.
inline constexpr uint64_t ModelReadGetParts(uint64_t share_bytes) {
  const uint64_t parts =
      (share_bytes + kModelReadPartBytes - 1) / kModelReadPartBytes;
  return parts > 0 ? parts : 1;
}

}  // namespace fsd::core

#endif  // FSD_CORE_FSD_CONFIG_H_
