#include "core/runtime.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "common/strings.h"
#include "core/channel.h"
#include "core/launcher.h"

namespace fsd::core {
namespace {

std::atomic<uint64_t> g_run_counter{0};

uint64_t MixHash(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
}

uint64_t FloatBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Order-sensitive fingerprint over every weight-determining generator
/// field: any config change that alters the generated weights must change
/// the derived cache family, or a warm instance would serve a share of a
/// different model as a hit.
uint64_t ModelConfigFingerprint(const model::SparseDnnConfig& c) {
  uint64_t h = 0xF5DCAFEull;
  h = MixHash(h, static_cast<uint64_t>(c.neurons));
  h = MixHash(h, static_cast<uint64_t>(c.layers));
  h = MixHash(h, static_cast<uint64_t>(c.nnz_per_row));
  h = MixHash(h, FloatBits(c.relu_cap));
  h = MixHash(h, FloatBits(c.bias));
  h = MixHash(h, static_cast<uint64_t>(c.window));
  h = MixHash(h, FloatBits(c.long_range_fraction));
  h = MixHash(h, static_cast<uint64_t>(c.num_global_offsets));
  h = MixHash(h, FloatBits(c.weight_min));
  h = MixHash(h, FloatBits(c.weight_max));
  h = MixHash(h, c.seed);
  return h;
}

/// Fingerprint of the partition layout (row ownership per part). Two
/// partitionings of one model — even at the same P, e.g. hypergraph vs
/// random — own different rows, so their shares must never alias in the
/// cache; function groups share warm instances across all of them.
uint64_t PartitionFingerprint(const part::ModelPartition& partition) {
  uint64_t h = MixHash(0xA9717ull,
                       static_cast<uint64_t>(partition.num_parts));
  for (const auto& rows : partition.owned_rows) {
    h = MixHash(h, rows.size());
    for (int32_t row : rows) h = MixHash(h, static_cast<uint64_t>(row));
  }
  return h;
}

/// Apportions an integer tree-level counter to the cumulative-share
/// interval [cum_before, cum_after]: member slices telescope, so summing
/// over members reproduces `total` exactly (the last member's cum_after is
/// exactly 1.0 because the share denominators are identical).
int64_t Apportion(int64_t total, double cum_before, double cum_after) {
  return std::llround(static_cast<double>(total) * cum_after) -
         std::llround(static_cast<double>(total) * cum_before);
}

Status Validate(const InferenceRequest& request) {
  if (request.dnn == nullptr || request.partition == nullptr) {
    return Status::InvalidArgument("request needs a model and a partition");
  }
  if (request.batches.empty()) {
    return Status::InvalidArgument("request carries no input batches");
  }
  const FsdOptions& options = request.options;
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.variant == Variant::kSerial && options.num_workers != 1) {
    return Status::InvalidArgument("FSD-Inf-Serial runs on a single worker");
  }
  if (request.partition->num_parts != options.num_workers) {
    return Status::FailedPrecondition(StrFormat(
        "model partitioned for %d workers but request asks for %d "
        "(the paper requires pre-partitioning for the chosen k)",
        request.partition->num_parts, options.num_workers));
  }
  if (static_cast<int32_t>(request.partition->layers.size()) !=
      request.dnn->layers()) {
    return Status::FailedPrecondition("partition does not match the model");
  }
  for (const auto* batch : request.batches) {
    if (batch == nullptr || batch->empty()) {
      return Status::InvalidArgument("null or empty input batch");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<cloud::BillingLine> SnapshotLedger(
    const cloud::BillingLedger& ledger) {
  std::vector<cloud::BillingLine> lines;
  for (int i = 0; i < static_cast<int>(cloud::BillingDimension::kDimensionCount);
       ++i) {
    lines.push_back(ledger.line(static_cast<cloud::BillingDimension>(i)));
  }
  return lines;
}

BillingDelta DiffLedger(const std::vector<cloud::BillingLine>& before,
                        const cloud::BillingLedger& after) {
  BillingDelta delta;
  for (int i = 0; i < static_cast<int>(cloud::BillingDimension::kDimensionCount);
       ++i) {
    const auto dim = static_cast<cloud::BillingDimension>(i);
    const cloud::BillingLine& b = before[i];
    const cloud::BillingLine& a = after.line(dim);
    const double cost = a.cost - b.cost;
    delta.quantities[i] = a.quantity - b.quantity;
    delta.total_cost += cost;
    if (dim == cloud::BillingDimension::kFaasInvocation ||
        dim == cloud::BillingDimension::kFaasRuntimeMbSec) {
      delta.faas_cost += cost;
    } else if (dim != cloud::BillingDimension::kVmSecond) {
      delta.comm_cost += cost;
    }
  }
  return delta;
}

uint64_t AllocateRunId() { return g_run_counter.fetch_add(1); }

std::string DeriveCacheFamily(const InferenceRequest& request) {
  const FsdOptions& options = request.options;
  if (!options.partition_cache || options.partition_cache_budget_bytes == 0 ||
      request.dnn == nullptr || request.partition == nullptr) {
    return "";
  }
  // Effective cache family: the caller's identity (or a fingerprint of
  // the full generator config, which uniquely determines synthetic
  // weights), always qualified with the partition-layout fingerprint —
  // shares of the same model under a different partitioning (different
  // P, or different scheme at the same P) must never alias.
  const std::string family =
      options.model_family.empty()
          ? StrFormat("dnn-%016llx",
                      static_cast<unsigned long long>(
                          ModelConfigFingerprint(request.dnn->config)))
          : options.model_family;
  return StrFormat("%s@%016llx", family.c_str(),
                   static_cast<unsigned long long>(
                       PartitionFingerprint(*request.partition)));
}

Status ValidateInferenceRequest(const InferenceRequest& request) {
  return Validate(request);
}

int32_t RequestSampleCols(const InferenceRequest& request) {
  int32_t cols = 0;
  for (const auto* batch : request.batches) {
    cols += batch->begin()->second.dim;
  }
  return cols;
}

Result<std::unique_ptr<RunState>> PrepareRunState(
    cloud::CloudEnv* cloud, const InferenceRequest& request,
    uint64_t run_id) {
  FSD_RETURN_IF_ERROR(Validate(request));
  FsdOptions options = request.options;
  if (options.worker_memory_mb <= 0) {
    options.worker_memory_mb =
        DefaultWorkerMemoryMb(request.dnn->neurons(), options.variant);
  }
  if (options.channel_scope.empty()) {
    // Default to a per-run scope. Shared unscoped resources leak state
    // between runs on one CloudEnv: a later run's receiver can list a
    // previous run's leftover object for the same (phase, source, target)
    // and then race the overwriting PUT's visibility window.
    options.channel_scope =
        StrFormat("r%llu-", static_cast<unsigned long long>(run_id));
  }

  // Offline provisioning (pre-created resources; not billed/timed). Scoped
  // names keep concurrent runs' channels isolated from one another.
  FSD_RETURN_IF_ERROR(ProvisionChannelResources(cloud, options));

  auto state = std::make_unique<RunState>();
  state->run_id = run_id;
  state->dnn = request.dnn;
  state->partition = request.partition;
  state->cache_family = DeriveCacheFamily(request);
  state->batches = request.batches;
  // Default membership: ONE query spanning every batch. The serving
  // runtime's batch aggregator overwrites this with the per-query slices
  // of a coalesced run.
  RunState::Member member;
  member.query_id = run_id;
  member.batch_begin = 0;
  member.batch_count = static_cast<int32_t>(request.batches.size());
  member.cols = RequestSampleCols(request);
  state->members = {member};
  state->options = std::move(options);
  state->cloud = cloud;
  state->outputs.resize(request.batches.size());
  state->metrics.workers.resize(state->options.num_workers);
  state->worker_status.assign(state->options.num_workers,
                              Status::Internal("worker never completed"));
  state->done = cloud->sim()->MakeSignal();
  state->quiesced = cloud->sim()->MakeSignal();
  return state;
}

void RunCoordinator(cloud::FaasContext* ctx, RunState* state) {
  // While the coordinator is alive it may launch more workers, so the run
  // cannot quiesce before it exits (see RunState::MaybeQuiesce).
  ++state->coordinators_active;
  Status status;
  if (state->abort) {
    // The workload was aborted before this query started: drain without
    // launching a worker tree that would only unwind again. Stamp worker 0
    // so the collected report carries the abort reason instead of the
    // opaque "never completed" placeholder.
    status = Status::Unavailable("run aborted before start");
    state->worker_status[0] = status;
    state->done->Fire();
  } else {
    // Parse request (tiny CPU), then invoke the first layer of workers.
    status = ctx->Burn(2e6);
    Rng rng(state->options.seed ^ 0xC00Dull);
    const std::vector<int32_t> first =
        CoordinatorInvokes(state->options.launch, state->options.num_workers);
    for (int32_t id : first) {
      if (!status.ok()) break;
      if (state->abort) {
        status = Status::Unavailable("run aborted during launch");
        break;
      }
      status =
          ctx->SleepFor(state->cloud->latency().faas_invoke_api.Sample(&rng));
      if (!status.ok()) break;
      cloud::FaasService::InvokeOutcome outcome =
          state->cloud->faas().InvokeAsync(
              state->worker_function,
              EncodeWorkerPayload(state->run_id, id));
      status = outcome.status;
      if (status.ok()) ++state->workers_launched;
    }
    if (!status.ok()) {
      state->abort = true;
      state->done->Fire();
    }
  }
  ctx->set_result(status);
  --state->coordinators_active;
  state->MaybeQuiesce();
}

InferenceReport CollectMemberReport(RunState* state, size_t member_index,
                                    double t0, double t1) {
  const RunState::Member& member = state->members[member_index];
  const double total_cols =
      std::max<double>(1.0, static_cast<double>(state->TotalCols()));
  double cols_before = 0.0;
  for (size_t i = 0; i < member_index; ++i) {
    cols_before += static_cast<double>(state->members[i].cols);
  }
  const double cum_before = cols_before / total_cols;
  const double cum_after =
      (cols_before + static_cast<double>(member.cols)) / total_cols;
  const double share = cum_after - cum_before;

  InferenceReport report;
  report.latency_s = t1 - t0;
  report.launch_complete_s = state->launch_complete_s - t0;
  report.worker_memory_mb = state->options.worker_memory_mb;
  report.status = Status::OK();
  for (const Status& s : state->worker_status) {
    if (!s.ok() && report.status.ok()) report.status = s;
  }
  if (state->options.variant == Variant::kSerial) {
    // Only worker 0 exists; its status decides.
    report.status = state->worker_status[0];
  }

  // The member's slice of the outputs (one map per of its batches).
  report.outputs.reserve(static_cast<size_t>(member.batch_count));
  for (int32_t b = 0; b < member.batch_count; ++b) {
    report.outputs.push_back(std::move(
        state->outputs[static_cast<size_t>(member.batch_begin + b)]));
  }

  // Metric attribution. Per-layer counters are exact — the member's batches
  // own the phase range [batch_begin, batch_begin + batch_count) * PPB.
  // Tree-level costs are split by batch share; integer counters by
  // cumulative rounding so member slices sum exactly to run totals.
  const int32_t ppb = state->PhasesPerBatch();
  const int32_t phase_begin = member.batch_begin * ppb;
  const int32_t phase_end = (member.batch_begin + member.batch_count) * ppb;
  report.metrics.workers.reserve(state->metrics.workers.size());
  for (const WorkerMetrics& w : state->metrics.workers) {
    WorkerMetrics out;
    out.worker_id = w.worker_id;
    // Cold starts happened once per tree; the first member carries them so
    // fleet-level cold-start counts stay exact under batching.
    out.cold_start = member_index == 0 && w.cold_start;
    const double duration = w.duration_s();
    out.start_time = w.start_time + cum_before * duration;
    out.end_time = w.start_time + cum_after * duration;
    out.model_load_s = w.model_load_s * share;
    out.launch_children_s = w.launch_children_s * share;
    out.model_get_parts = Apportion(w.model_get_parts, cum_before, cum_after);
    out.model_bytes_read =
        Apportion(w.model_bytes_read, cum_before, cum_after);
    out.model_gets_saved =
        Apportion(w.model_gets_saved, cum_before, cum_after);
    out.model_bytes_saved =
        Apportion(w.model_bytes_saved, cum_before, cum_after);
    out.cache_hits = Apportion(w.cache_hits, cum_before, cum_after);
    out.cache_misses = Apportion(w.cache_misses, cum_before, cum_after);
    out.cache_evictions = Apportion(w.cache_evictions, cum_before, cum_after);
    out.cache_invalidations =
        Apportion(w.cache_invalidations, cum_before, cum_after);
    out.cache_oversize_rejects =
        Apportion(w.cache_oversize_rejects, cum_before, cum_after);
    out.share_loads_storage =
        Apportion(w.share_loads_storage, cum_before, cum_after);
    out.share_loads_peer =
        Apportion(w.share_loads_peer, cum_before, cum_after);
    out.prewarmed_hits = Apportion(w.prewarmed_hits, cum_before, cum_after);
    out.share_peer_connects =
        Apportion(w.share_peer_connects, cum_before, cum_after);
    out.share_peer_chunks =
        Apportion(w.share_peer_chunks, cum_before, cum_after);
    out.share_peer_bytes =
        Apportion(w.share_peer_bytes, cum_before, cum_after);
    out.share_relay_chunks =
        Apportion(w.share_relay_chunks, cum_before, cum_after);
    out.share_relay_requests =
        Apportion(w.share_relay_requests, cum_before, cum_after);
    out.share_relay_bytes =
        Apportion(w.share_relay_bytes, cum_before, cum_after);
    const int32_t layer_end = std::min(
        phase_end, static_cast<int32_t>(w.layers.size()));
    for (int32_t phase = phase_begin; phase < layer_end; ++phase) {
      // Re-based so a member's metrics read like an unbatched run's.
      out.Layer(phase - phase_begin) = w.layers[static_cast<size_t>(phase)];
    }
    report.metrics.workers.push_back(std::move(out));
  }
  report.metrics.tree_share = share;
  report.metrics.Finalize();

  report.total_samples = member.cols;
  report.per_sample_ms =
      member.cols > 0 ? report.latency_s * 1000.0 / member.cols : 0.0;
  report.predicted = PredictFromMetrics(
      state->cloud->billing().pricing(), state->options, report.metrics,
      state->options.worker_memory_mb);
  return report;
}

InferenceReport CollectReport(RunState* state, double t0, double t1) {
  return CollectMemberReport(state, 0, t0, t1);
}

Result<InferenceReport> RunInference(cloud::CloudEnv* cloud,
                                     const InferenceRequest& request) {
  const uint64_t run_id = AllocateRunId();
  FSD_ASSIGN_OR_RETURN(std::unique_ptr<RunState> state,
                       PrepareRunState(cloud, request, run_id));
  RunState* raw_state = state.get();

  state->worker_function = StrFormat(
      "fsd-worker-%llu", static_cast<unsigned long long>(run_id));
  const std::string coordinator_fn = StrFormat(
      "fsd-coordinator-%llu", static_cast<unsigned long long>(run_id));

  cloud::FaasFunctionConfig worker_config;
  worker_config.name = state->worker_function;
  worker_config.memory_mb = state->options.worker_memory_mb;
  worker_config.timeout_s = state->options.worker_timeout_s;
  worker_config.handler = [raw_state](cloud::FaasContext* ctx) {
    Result<WorkerPayload> payload = DecodeWorkerPayload(ctx->payload());
    if (!payload.ok()) {
      ctx->set_result(payload.status());
      return;
    }
    RunFsiWorker(ctx, raw_state, payload->worker_id);
  };
  // On any failure from here on, per-run channel resources provisioned by
  // PrepareRunState must still be released (KV namespaces are stateful).
  Status status = cloud->faas().RegisterFunction(worker_config);
  if (!status.ok()) {
    TeardownChannelResources(cloud, raw_state->options).ok();
    return status;
  }

  // Coordinator: lightweight parser + first-level launcher (paper §VI-A1).
  cloud::FaasFunctionConfig coord_config;
  coord_config.name = coordinator_fn;
  coord_config.memory_mb = state->options.coordinator_memory_mb;
  coord_config.timeout_s = 900.0;
  coord_config.handler = [raw_state](cloud::FaasContext* ctx) {
    RunCoordinator(ctx, raw_state);
  };
  status = cloud->faas().RegisterFunction(coord_config);
  if (!status.ok()) {
    TeardownChannelResources(cloud, raw_state->options).ok();
    return status;
  }

  // --- submit the query and drive the simulation to completion ---
  const std::vector<cloud::BillingLine> before =
      SnapshotLedger(cloud->billing());
  Status client_status = Status::OK();
  double t0 = 0.0;
  double t1 = -1.0;
  cloud->sim()->AddProcess(
      StrFormat("client-%llu", static_cast<unsigned long long>(run_id)),
      [&, raw_state]() {
        t0 = cloud->sim()->Now();
        cloud::FaasService::InvokeOutcome outcome = cloud->faas().InvokeAsync(
            coordinator_fn, EncodeWorkerPayload(raw_state->run_id, 0));
        if (!outcome.status.ok()) {
          client_status = outcome.status;
          return;
        }
        cloud->sim()->WaitSignal(raw_state->done.get());
        t1 = cloud->sim()->Now();
      });
  cloud->sim()->Run();

  // Release per-run channel resources before diffing the ledger so the KV
  // namespace's node time is attributed to this run — on failure paths
  // too, or a long-lived CloudEnv would accumulate dead namespaces.
  const Status teardown =
      TeardownChannelResources(cloud, raw_state->options);
  FSD_RETURN_IF_ERROR(client_status);
  if (t1 < 0.0) {
    return Status::Internal("inference run never completed (deadlock?)");
  }
  FSD_RETURN_IF_ERROR(teardown);
  InferenceReport report = CollectReport(raw_state, t0, t1);
  report.billing = DiffLedger(before, cloud->billing());
  return report;
}

}  // namespace fsd::core
