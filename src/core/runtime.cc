#include "core/runtime.h"

#include <atomic>

#include "common/strings.h"
#include "core/launcher.h"
#include "core/object_channel.h"
#include "core/queue_channel.h"

namespace fsd::core {
namespace {

std::atomic<uint64_t> g_run_counter{0};

std::vector<cloud::BillingLine> SnapshotLedger(
    const cloud::BillingLedger& ledger) {
  std::vector<cloud::BillingLine> lines;
  for (int i = 0; i < static_cast<int>(cloud::BillingDimension::kDimensionCount);
       ++i) {
    lines.push_back(ledger.line(static_cast<cloud::BillingDimension>(i)));
  }
  return lines;
}

BillingDelta DiffLedger(const std::vector<cloud::BillingLine>& before,
                        const cloud::BillingLedger& after) {
  BillingDelta delta;
  for (int i = 0; i < static_cast<int>(cloud::BillingDimension::kDimensionCount);
       ++i) {
    const auto dim = static_cast<cloud::BillingDimension>(i);
    const cloud::BillingLine& b = before[i];
    const cloud::BillingLine& a = after.line(dim);
    const double cost = a.cost - b.cost;
    delta.quantities[i] = a.quantity - b.quantity;
    delta.total_cost += cost;
    if (dim == cloud::BillingDimension::kFaasInvocation ||
        dim == cloud::BillingDimension::kFaasRuntimeMbSec) {
      delta.faas_cost += cost;
    } else if (dim != cloud::BillingDimension::kVmSecond) {
      delta.comm_cost += cost;
    }
  }
  return delta;
}

Status Validate(const InferenceRequest& request) {
  if (request.dnn == nullptr || request.partition == nullptr) {
    return Status::InvalidArgument("request needs a model and a partition");
  }
  if (request.batches.empty()) {
    return Status::InvalidArgument("request carries no input batches");
  }
  const FsdOptions& options = request.options;
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.variant == Variant::kSerial && options.num_workers != 1) {
    return Status::InvalidArgument("FSD-Inf-Serial runs on a single worker");
  }
  if (request.partition->num_parts != options.num_workers) {
    return Status::FailedPrecondition(StrFormat(
        "model partitioned for %d workers but request asks for %d "
        "(the paper requires pre-partitioning for the chosen k)",
        request.partition->num_parts, options.num_workers));
  }
  if (static_cast<int32_t>(request.partition->layers.size()) !=
      request.dnn->layers()) {
    return Status::FailedPrecondition("partition does not match the model");
  }
  for (const auto* batch : request.batches) {
    if (batch == nullptr || batch->empty()) {
      return Status::InvalidArgument("null or empty input batch");
    }
  }
  return Status::OK();
}

}  // namespace

Result<InferenceReport> RunInference(cloud::CloudEnv* cloud,
                                     const InferenceRequest& request) {
  FSD_RETURN_IF_ERROR(Validate(request));
  FsdOptions options = request.options;
  if (options.worker_memory_mb <= 0) {
    options.worker_memory_mb =
        DefaultWorkerMemoryMb(request.dnn->neurons(), options.variant);
  }

  // --- offline provisioning (pre-created resources; not billed/timed) ---
  if (options.variant == Variant::kQueue) {
    FSD_RETURN_IF_ERROR(QueueChannel::Provision(cloud, options));
  } else if (options.variant == Variant::kObject) {
    FSD_RETURN_IF_ERROR(ObjectChannel::Provision(cloud, options));
  }

  // --- per-run state ---
  auto state = std::make_unique<RunState>();
  state->dnn = request.dnn;
  state->partition = request.partition;
  state->batches = request.batches;
  state->options = options;
  state->cloud = cloud;
  state->outputs.resize(request.batches.size());
  state->metrics.workers.resize(options.num_workers);
  state->worker_status.assign(options.num_workers,
                              Status::Internal("worker never completed"));
  state->done = cloud->sim()->MakeSignal();

  const uint64_t run_id = g_run_counter.fetch_add(1);
  state->worker_function = StrFormat("fsd-worker-%llu",
                                     static_cast<unsigned long long>(run_id));
  const std::string coordinator_fn = StrFormat(
      "fsd-coordinator-%llu", static_cast<unsigned long long>(run_id));

  RunState* raw_state = state.get();
  cloud::FaasFunctionConfig worker_config;
  worker_config.name = state->worker_function;
  worker_config.memory_mb = options.worker_memory_mb;
  worker_config.timeout_s = options.worker_timeout_s;
  worker_config.handler = [raw_state](cloud::FaasContext* ctx) {
    RunFsiWorker(ctx, raw_state);
  };
  FSD_RETURN_IF_ERROR(cloud->faas().RegisterFunction(worker_config));

  // Coordinator: lightweight parser + first-level launcher (paper §VI-A1).
  cloud::FaasFunctionConfig coord_config;
  coord_config.name = coordinator_fn;
  coord_config.memory_mb = options.coordinator_memory_mb;
  coord_config.timeout_s = 900.0;
  coord_config.handler = [raw_state](cloud::FaasContext* ctx) {
    // Parse request (tiny CPU), then invoke the first layer of workers.
    Status status = ctx->Burn(2e6);
    Rng rng(raw_state->options.seed ^ 0xC00Dull);
    const std::vector<int32_t> first = CoordinatorInvokes(
        raw_state->options.launch, raw_state->options.num_workers);
    for (int32_t id : first) {
      if (!status.ok()) break;
      status = ctx->SleepFor(
          raw_state->cloud->latency().faas_invoke_api.Sample(&rng));
      if (!status.ok()) break;
      cloud::FaasService::InvokeOutcome outcome =
          raw_state->cloud->faas().InvokeAsync(raw_state->worker_function,
                                               EncodeWorkerPayload(id));
      status = outcome.status;
    }
    ctx->set_result(status);
    if (!status.ok()) {
      raw_state->abort = true;
      raw_state->done->Fire();
    }
  };
  FSD_RETURN_IF_ERROR(cloud->faas().RegisterFunction(coord_config));

  // --- submit the query and drive the simulation to completion ---
  const std::vector<cloud::BillingLine> before =
      SnapshotLedger(cloud->billing());
  auto report = std::make_unique<InferenceReport>();
  double t0 = 0.0;
  double t1 = -1.0;
  cloud->sim()->AddProcess(
      StrFormat("client-%llu", static_cast<unsigned long long>(run_id)),
      [&, raw_state]() {
        t0 = cloud->sim()->Now();
        cloud::FaasService::InvokeOutcome outcome =
            cloud->faas().InvokeAsync(coordinator_fn, Bytes{});
        if (!outcome.status.ok()) {
          report->status = outcome.status;
          return;
        }
        cloud->sim()->WaitSignal(raw_state->done.get());
        t1 = cloud->sim()->Now();
      });
  cloud->sim()->Run();

  if (t1 < 0.0) {
    return Status::Internal("inference run never completed (deadlock?)");
  }

  // --- collect results ---
  report->latency_s = t1 - t0;
  report->launch_complete_s = raw_state->launch_complete_s - t0;
  report->worker_memory_mb = options.worker_memory_mb;
  report->status = Status::OK();
  for (const Status& s : raw_state->worker_status) {
    if (!s.ok() && report->status.ok()) report->status = s;
  }
  if (options.variant == Variant::kSerial) {
    // Only worker 0 exists; its status decides.
    report->status = raw_state->worker_status[0];
  }
  report->outputs = std::move(raw_state->outputs);
  report->metrics = std::move(raw_state->metrics);
  report->metrics.Finalize();
  report->billing = DiffLedger(before, cloud->billing());

  int32_t samples = 0;
  for (const auto* batch : request.batches) {
    if (!batch->empty()) samples += batch->begin()->second.dim;
  }
  report->total_samples = samples;
  report->per_sample_ms =
      samples > 0 ? report->latency_s * 1000.0 / samples : 0.0;
  report->predicted = PredictFromMetrics(cloud->billing().pricing(), options,
                                         report->metrics,
                                         options.worker_memory_mb);
  return std::move(*report);
}

}  // namespace fsd::core
