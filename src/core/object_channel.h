// ObjectChannel — FSD-Inf-Object (paper §III-B, Algorithm 2, Figure 3).
//
// Send path: each (source m -> target n) pair writes exactly one object per
// phase — "{phase}/{n}/{m}_{n}.dat" in bucket-{n % num_buckets}, or a
// 0-byte ".nul" marker when there is nothing to transmit. Objects can be
// arbitrarily large, so no chunking is needed. PUTs ride the worker's IPC
// lanes and overlap with compute.
//
// Receive path: the worker repeatedly LISTs its own prefix
// "{phase}/{m}/" in bucket-{m % num_buckets}; ".nul" names complete a
// source without a GET, already-received sources are skipped (no redundant
// reads), and remaining ".dat" objects are fetched on parallel lanes.
#ifndef FSD_CORE_OBJECT_CHANNEL_H_
#define FSD_CORE_OBJECT_CHANNEL_H_

#include <string>
#include <vector>

#include "core/channel.h"
#include "core/serialization.h"

namespace fsd::core {

class ObjectChannel : public CommChannel {
 public:
  ObjectChannel() = default;

  /// Pre-creates the bucket shards (offline step, as in the paper).
  static Status Provision(cloud::CloudEnv* cloud, const FsdOptions& options);

  static std::string BucketName(int32_t target, const FsdOptions& options);
  /// Key "{phase}/{target}/{source}_{target}" + (".dat" | ".nul").
  static std::string ObjectKey(int32_t phase, int32_t source, int32_t target,
                               bool empty_marker);

  std::string_view name() const override { return "object"; }

  Status SendPhase(WorkerEnv* env, int32_t phase,
                   const linalg::ActivationMap& source,
                   const std::vector<SendSpec>& sends) override;

  Result<linalg::ActivationMap> ReceivePhase(
      WorkerEnv* env, int32_t phase,
      const std::vector<int32_t>& sources) override;
};

}  // namespace fsd::core

#endif  // FSD_CORE_OBJECT_CHANNEL_H_
