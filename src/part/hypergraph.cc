#include "part/hypergraph.h"

#include <algorithm>
#include <numeric>

namespace fsd::part {

Hypergraph Hypergraph::Build(int32_t num_vertices,
                             std::vector<int64_t> vertex_weights,
                             const std::vector<std::vector<int32_t>>& nets,
                             const std::vector<int64_t>& net_costs) {
  FSD_CHECK_EQ(nets.size(), net_costs.size());
  FSD_CHECK_EQ(vertex_weights.size(), static_cast<size_t>(num_vertices));
  Hypergraph hg;
  hg.num_vertices_ = num_vertices;
  hg.vertex_weights_ = std::move(vertex_weights);
  hg.total_vertex_weight_ = std::accumulate(hg.vertex_weights_.begin(),
                                            hg.vertex_weights_.end(),
                                            static_cast<int64_t>(0));
  hg.net_ptr_.push_back(0);
  std::vector<int32_t> pin_buf;
  for (size_t e = 0; e < nets.size(); ++e) {
    pin_buf = nets[e];
    std::sort(pin_buf.begin(), pin_buf.end());
    pin_buf.erase(std::unique(pin_buf.begin(), pin_buf.end()), pin_buf.end());
    if (pin_buf.size() < 2) continue;  // single-pin nets can never be cut
    for (int32_t v : pin_buf) {
      FSD_CHECK(v >= 0 && v < num_vertices);
      hg.pins_.push_back(v);
    }
    hg.net_ptr_.push_back(static_cast<int64_t>(hg.pins_.size()));
    hg.net_costs_.push_back(net_costs[e]);
  }

  // Inverse incidence.
  hg.vertex_ptr_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (int32_t v : hg.pins_) ++hg.vertex_ptr_[v + 1];
  std::partial_sum(hg.vertex_ptr_.begin(), hg.vertex_ptr_.end(),
                   hg.vertex_ptr_.begin());
  hg.vertex_nets_.resize(hg.pins_.size());
  std::vector<int64_t> cursor(hg.vertex_ptr_.begin(),
                              hg.vertex_ptr_.end() - 1);
  for (int64_t e = 0; e < hg.num_nets(); ++e) {
    hg.ForEachPin(e, [&](int32_t v) { hg.vertex_nets_[cursor[v]++] = e; });
  }
  return hg;
}

int64_t Hypergraph::ConnectivityMinusOne(
    const std::vector<int32_t>& assignment, int32_t num_parts) const {
  FSD_CHECK_EQ(assignment.size(), static_cast<size_t>(num_vertices_));
  std::vector<int32_t> stamp(static_cast<size_t>(num_parts), -1);
  int64_t total = 0;
  for (int64_t e = 0; e < num_nets(); ++e) {
    int32_t touched = 0;
    ForEachPin(e, [&](int32_t v) {
      const int32_t part = assignment[v];
      if (stamp[part] != e) {
        stamp[part] = static_cast<int32_t>(e);
        ++touched;
      }
    });
    total += net_cost(e) * (touched - 1);
  }
  return total;
}

}  // namespace fsd::part
