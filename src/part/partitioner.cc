#include "part/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/rng.h"

namespace fsd::part {
namespace {

// ---------------------------------------------------------------------------
// Two-way state: side counts per net, gains, balance bookkeeping.
// ---------------------------------------------------------------------------

struct Bisection {
  const Hypergraph* hg;
  std::vector<int8_t> side;       // vertex -> 0/1
  std::vector<int32_t> count[2];  // per-net pin counts on each side
  int64_t weight[2] = {0, 0};
  int64_t cut = 0;

  void Init(const Hypergraph& h, const std::vector<int8_t>& assignment) {
    hg = &h;
    side = assignment;
    count[0].assign(h.num_nets(), 0);
    count[1].assign(h.num_nets(), 0);
    weight[0] = weight[1] = 0;
    for (int32_t v = 0; v < h.num_vertices(); ++v) {
      weight[side[v]] += h.vertex_weight(v);
    }
    cut = 0;
    for (int64_t e = 0; e < h.num_nets(); ++e) {
      h.ForEachPin(e, [&](int32_t v) { ++count[side[v]][e]; });
      if (count[0][e] > 0 && count[1][e] > 0) cut += h.net_cost(e);
    }
  }

  /// Cut-gain of moving v to the other side.
  int64_t Gain(int32_t v) const {
    int64_t gain = 0;
    const int from = side[v];
    const int to = 1 - from;
    hg->ForEachNetOf(v, [&](int64_t e) {
      if (count[from][e] == 1) gain += hg->net_cost(e);  // becomes uncut
      if (count[to][e] == 0) gain -= hg->net_cost(e);    // becomes cut
    });
    return gain;
  }

  void Move(int32_t v) {
    const int from = side[v];
    const int to = 1 - from;
    hg->ForEachNetOf(v, [&](int64_t e) {
      if (count[from][e] == 1 && count[to][e] > 0) cut -= hg->net_cost(e);
      if (count[to][e] == 0 && count[from][e] > 1) cut += hg->net_cost(e);
      --count[from][e];
      ++count[to][e];
    });
    weight[from] -= hg->vertex_weight(v);
    weight[to] += hg->vertex_weight(v);
    side[v] = static_cast<int8_t>(to);
  }
};

// ---------------------------------------------------------------------------
// FM refinement (one pass: every vertex moves at most once; keep best prefix)
// ---------------------------------------------------------------------------

void FmPass(Bisection* bis, int64_t max_weight0, int64_t max_weight1,
            Rng* rng) {
  const Hypergraph& hg = *bis->hg;
  const int32_t n = hg.num_vertices();

  // Lazy-deletion priority queue of (gain, tiebreak, vertex).
  struct Entry {
    int64_t gain;
    uint64_t tiebreak;
    int32_t vertex;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return tiebreak < other.tiebreak;
    }
  };
  std::priority_queue<Entry> heap;
  std::vector<int64_t> gain(n, 0);
  std::vector<uint8_t> moved(n, 0);
  std::vector<uint8_t> queued(n, 0);

  auto push = [&](int32_t v) {
    heap.push({gain[v], rng->Next(), v});
    queued[v] = 1;
  };

  // Seed with boundary vertices only (interior moves cannot help first).
  for (int32_t v = 0; v < n; ++v) {
    bool boundary = false;
    hg.ForEachNetOf(v, [&](int64_t e) {
      if (bis->count[0][e] > 0 && bis->count[1][e] > 0) boundary = true;
    });
    if (!boundary) continue;
    gain[v] = bis->Gain(v);
    push(v);
  }

  std::vector<int32_t> move_order;
  const int64_t start_cut = bis->cut;
  int64_t best_cut = start_cut;
  size_t best_prefix = 0;
  // Bounded hill-climb: a full FM pass moves every vertex, which is
  // wasteful on large graphs; stop once the cut has not improved for a
  // while (the best prefix is kept either way).
  const size_t stall_limit =
      std::max<size_t>(1024, static_cast<size_t>(n) / 16);

  // Fiduccia-Mattheyses incremental gain maintenance: moving v from F to T
  // only perturbs the gains of pins on v's nets, by fixed O(1) rules driven
  // by the per-net side counts.
  auto move_with_updates = [&](int32_t v) {
    const int from = bis->side[v];
    const int to = 1 - from;
    hg.ForEachNetOf(v, [&](int64_t e) {
      const int64_t c = hg.net_cost(e);
      const int32_t tc = bis->count[to][e];
      if (tc == 0) {
        // Net was internal to `from`; it becomes cut: every other pin now
        // gains by c from following v.
        hg.ForEachPin(e, [&](int32_t u) {
          if (u == v || moved[u]) return;
          gain[u] += c;
          push(u);
        });
      } else if (tc == 1) {
        // The lone pin on `to` loses its uncut-by-returning gain.
        hg.ForEachPin(e, [&](int32_t u) {
          if (u == v || moved[u] || bis->side[u] != to) return;
          gain[u] -= c;
          push(u);
        });
      }
      const int32_t fc_after = bis->count[from][e] - 1;
      if (fc_after == 0) {
        // Net becomes internal to `to`: followers no longer gain.
        hg.ForEachPin(e, [&](int32_t u) {
          if (u == v || moved[u]) return;
          gain[u] -= c;
          push(u);
        });
      } else if (fc_after == 1) {
        // A single pin remains on `from`: moving it would uncut the net.
        hg.ForEachPin(e, [&](int32_t u) {
          if (u == v || moved[u] || bis->side[u] != from) return;
          gain[u] += c;
          push(u);
        });
      }
    });
    bis->Move(v);
  };

  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const int32_t v = top.vertex;
    if (moved[v] || top.gain != gain[v]) continue;  // stale entry
    // Balance check for the prospective move.
    const int to = 1 - bis->side[v];
    const int64_t new_weight = bis->weight[to] + hg.vertex_weight(v);
    if ((to == 0 && new_weight > max_weight0) ||
        (to == 1 && new_weight > max_weight1)) {
      continue;
    }
    moved[v] = 1;
    move_with_updates(v);
    move_order.push_back(v);
    if (bis->cut < best_cut) {
      best_cut = bis->cut;
      best_prefix = move_order.size();
    }
    if (move_order.size() - best_prefix > stall_limit) break;
  }

  // Roll back to the best prefix.
  for (size_t i = move_order.size(); i > best_prefix; --i) {
    bis->Move(move_order[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Coarsening: heavy-connectivity matching
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Hypergraph hg;
  std::vector<int32_t> fine_to_coarse;
};

CoarseLevel Coarsen(const Hypergraph& hg, Rng* rng) {
  const int32_t n = hg.num_vertices();
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng->NextBounded(static_cast<uint64_t>(i) + 1)]);
  }

  std::vector<int32_t> match(n, -1);
  std::vector<double> score(n, 0.0);
  std::vector<int32_t> touched;
  for (int32_t v : order) {
    if (match[v] >= 0) continue;
    touched.clear();
    hg.ForEachNetOf(v, [&](int64_t e) {
      const double w =
          static_cast<double>(hg.net_cost(e)) / (hg.net_size(e) - 1);
      hg.ForEachPin(e, [&](int32_t u) {
        if (u == v || match[u] >= 0) return;
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += w;
      });
    });
    int32_t best = -1;
    double best_score = 0.0;
    for (int32_t u : touched) {
      if (score[u] > best_score) {
        best_score = score[u];
        best = u;
      }
      score[u] = 0.0;
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, -1);
  int32_t next = 0;
  for (int32_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] >= 0) continue;
    level.fine_to_coarse[v] = next;
    if (match[v] != v && match[v] >= 0) {
      level.fine_to_coarse[match[v]] = next;
    }
    ++next;
  }

  std::vector<int64_t> weights(next, 0);
  for (int32_t v = 0; v < n; ++v) {
    weights[level.fine_to_coarse[v]] += hg.vertex_weight(v);
  }
  // Project nets; merge duplicates by hashed (sorted pin list) key.
  struct PinsHash {
    size_t operator()(const std::vector<int32_t>& pins) const {
      size_t h = 0x9E3779B97F4A7C15ull;
      for (int32_t p : pins) {
        h ^= static_cast<size_t>(p) + 0x9E3779B9ull + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<int32_t>, int64_t, PinsHash> merged;
  merged.reserve(static_cast<size_t>(hg.num_nets()));
  std::vector<int32_t> pin_buf;
  for (int64_t e = 0; e < hg.num_nets(); ++e) {
    pin_buf.clear();
    hg.ForEachPin(e, [&](int32_t v) {
      pin_buf.push_back(level.fine_to_coarse[v]);
    });
    std::sort(pin_buf.begin(), pin_buf.end());
    pin_buf.erase(std::unique(pin_buf.begin(), pin_buf.end()), pin_buf.end());
    if (pin_buf.size() < 2) continue;
    merged[pin_buf] += hg.net_cost(e);
  }
  std::vector<std::vector<int32_t>> nets;
  std::vector<int64_t> costs;
  nets.reserve(merged.size());
  for (auto& [pins, cost] : merged) {
    nets.push_back(pins);
    costs.push_back(cost);
  }
  level.hg = Hypergraph::Build(next, std::move(weights), nets, costs);
  return level;
}

// ---------------------------------------------------------------------------
// Initial bisection: greedy BFS growth, best of several restarts
// ---------------------------------------------------------------------------

std::vector<int8_t> GreedyGrow(const Hypergraph& hg, int64_t target0,
                               int64_t max_weight0, Rng* rng) {
  const int32_t n = hg.num_vertices();
  std::vector<int8_t> side(n, 1);
  if (n == 0) return side;

  std::vector<uint8_t> in_zero(n, 0);
  int64_t weight0 = 0;
  // Priority: vertices strongly connected to side 0.
  std::vector<double> affinity(n, 0.0);
  auto cmp = [&affinity](int32_t a, int32_t b) {
    if (affinity[a] != affinity[b]) return affinity[a] < affinity[b];
    return a < b;
  };
  std::priority_queue<int32_t, std::vector<int32_t>, decltype(cmp)> frontier(
      cmp);

  const int32_t start =
      static_cast<int32_t>(rng->NextBounded(static_cast<uint64_t>(n)));
  affinity[start] = 1.0;
  frontier.push(start);
  std::vector<double> last_pushed(n, 0.0);
  last_pushed[start] = 1.0;

  while (weight0 < target0) {
    int32_t v = -1;
    while (!frontier.empty()) {
      const int32_t top = frontier.top();
      frontier.pop();
      if (!in_zero[top] && last_pushed[top] == affinity[top]) {
        v = top;
        break;
      }
    }
    if (v < 0) {
      // Frontier exhausted (disconnected graph): seed a random new vertex.
      int32_t u = -1;
      for (int32_t probe = 0; probe < n; ++probe) {
        const int32_t c =
            static_cast<int32_t>(rng->NextBounded(static_cast<uint64_t>(n)));
        if (!in_zero[c]) {
          u = c;
          break;
        }
      }
      if (u < 0) break;
      v = u;
    }
    if (weight0 + hg.vertex_weight(v) > max_weight0) {
      if (frontier.empty()) break;
      continue;
    }
    in_zero[v] = 1;
    side[v] = 0;
    weight0 += hg.vertex_weight(v);
    hg.ForEachNetOf(v, [&](int64_t e) {
      const double w =
          static_cast<double>(hg.net_cost(e)) / (hg.net_size(e) - 1);
      hg.ForEachPin(e, [&](int32_t u) {
        if (in_zero[u]) return;
        affinity[u] += w;
        last_pushed[u] = affinity[u];
        frontier.push(u);
      });
    });
  }
  return side;
}

// Bisects `hg` with left-side weight target ratio; returns side assignment.
std::vector<int8_t> Bisect(const Hypergraph& hg, double ratio,
                           const PartitionerOptions& options, Rng* rng) {
  // Multilevel V-cycle.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &hg;
  for (int32_t lvl = 0; lvl < options.max_levels &&
                        current->num_vertices() > options.coarsen_to;
       ++lvl) {
    CoarseLevel level = Coarsen(*current, rng);
    if (level.hg.num_vertices() >=
        static_cast<int32_t>(current->num_vertices() * 0.95)) {
      break;  // coarsening stalled
    }
    levels.push_back(std::move(level));
    current = &levels.back().hg;
  }

  const int64_t total = current->total_vertex_weight();
  const int64_t target0 = static_cast<int64_t>(total * ratio);
  auto max_for = [&](const Hypergraph& h, double r) {
    return static_cast<int64_t>(
        std::ceil(h.total_vertex_weight() * r * (1.0 + options.epsilon)));
  };

  // Initial partition on the coarsest hypergraph: best of several grows.
  Bisection best_bis;
  int64_t best_cut = -1;
  std::vector<int8_t> best_side;
  for (int32_t r = 0; r < options.initial_restarts; ++r) {
    std::vector<int8_t> side =
        GreedyGrow(*current, target0, max_for(*current, ratio), rng);
    Bisection bis;
    bis.Init(*current, side);
    for (int32_t pass = 0; pass < options.fm_passes; ++pass) {
      const int64_t before = bis.cut;
      FmPass(&bis, max_for(*current, ratio), max_for(*current, 1.0 - ratio),
             rng);
      if (bis.cut >= before) break;
    }
    if (best_cut < 0 || bis.cut < best_cut) {
      best_cut = bis.cut;
      best_side = bis.side;
    }
  }

  // Uncoarsen with refinement at each level.
  std::vector<int8_t> side = std::move(best_side);
  for (size_t lvl = levels.size(); lvl > 0; --lvl) {
    const CoarseLevel& level = levels[lvl - 1];
    const Hypergraph& fine =
        (lvl - 1 == 0) ? hg : levels[lvl - 2].hg;
    std::vector<int8_t> fine_side(fine.num_vertices());
    for (int32_t v = 0; v < fine.num_vertices(); ++v) {
      fine_side[v] = side[level.fine_to_coarse[v]];
    }
    Bisection bis;
    bis.Init(fine, fine_side);
    for (int32_t pass = 0; pass < options.fm_passes; ++pass) {
      const int64_t before = bis.cut;
      FmPass(&bis, max_for(fine, ratio), max_for(fine, 1.0 - ratio), rng);
      if (bis.cut >= before) break;
    }
    side = std::move(bis.side);
  }

  // No coarsening happened at all: refine the flat problem directly.
  if (levels.empty()) {
    Bisection bis;
    bis.Init(hg, side);
    for (int32_t pass = 0; pass < options.fm_passes; ++pass) {
      const int64_t before = bis.cut;
      FmPass(&bis, max_for(hg, ratio), max_for(hg, 1.0 - ratio), rng);
      if (bis.cut >= before) break;
    }
    side = std::move(bis.side);
  }
  return side;
}

/// Extracts the sub-hypergraph induced by vertices with side == which.
/// Fills `local_to_global`.
Hypergraph SubHypergraph(const Hypergraph& hg, const std::vector<int8_t>& side,
                         int8_t which, std::vector<int32_t>* local_to_global) {
  std::vector<int32_t> global_to_local(hg.num_vertices(), -1);
  local_to_global->clear();
  for (int32_t v = 0; v < hg.num_vertices(); ++v) {
    if (side[v] == which) {
      global_to_local[v] = static_cast<int32_t>(local_to_global->size());
      local_to_global->push_back(v);
    }
  }
  std::vector<int64_t> weights(local_to_global->size());
  for (size_t i = 0; i < local_to_global->size(); ++i) {
    weights[i] = hg.vertex_weight((*local_to_global)[i]);
  }
  std::vector<std::vector<int32_t>> nets;
  std::vector<int64_t> costs;
  std::vector<int32_t> pin_buf;
  for (int64_t e = 0; e < hg.num_nets(); ++e) {
    pin_buf.clear();
    hg.ForEachPin(e, [&](int32_t v) {
      if (global_to_local[v] >= 0) pin_buf.push_back(global_to_local[v]);
    });
    if (pin_buf.size() < 2) continue;
    nets.push_back(pin_buf);
    costs.push_back(hg.net_cost(e));
  }
  return Hypergraph::Build(static_cast<int32_t>(local_to_global->size()),
                           std::move(weights), nets, costs);
}

void RecursiveBisect(const Hypergraph& hg, int32_t num_parts,
                     int32_t part_offset, const PartitionerOptions& options,
                     Rng* rng, const std::vector<int32_t>& to_global,
                     std::vector<int32_t>* assignment) {
  if (num_parts == 1) {
    for (int32_t v = 0; v < hg.num_vertices(); ++v) {
      (*assignment)[to_global[v]] = part_offset;
    }
    return;
  }
  const int32_t left_parts = (num_parts + 1) / 2;
  const double ratio = static_cast<double>(left_parts) / num_parts;
  const std::vector<int8_t> side = Bisect(hg, ratio, options, rng);

  std::vector<int32_t> left_map;
  std::vector<int32_t> right_map;
  Hypergraph left = SubHypergraph(hg, side, 0, &left_map);
  Hypergraph right = SubHypergraph(hg, side, 1, &right_map);
  for (auto& v : left_map) v = to_global[v];
  for (auto& v : right_map) v = to_global[v];
  RecursiveBisect(left, left_parts, part_offset, options, rng, left_map,
                  assignment);
  RecursiveBisect(right, num_parts - left_parts, part_offset + left_parts,
                  options, rng, right_map, assignment);
}

double Imbalance(const Hypergraph& hg, const std::vector<int32_t>& assignment,
                 int32_t num_parts) {
  std::vector<int64_t> weights(num_parts, 0);
  for (int32_t v = 0; v < hg.num_vertices(); ++v) {
    weights[assignment[v]] += hg.vertex_weight(v);
  }
  const double ideal =
      static_cast<double>(hg.total_vertex_weight()) / num_parts;
  int64_t max_weight = 0;
  for (int64_t w : weights) max_weight = std::max(max_weight, w);
  return ideal > 0 ? static_cast<double>(max_weight) / ideal - 1.0 : 0.0;
}

}  // namespace

std::string_view PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHypergraph:
      return "HGP-DNN";
    case PartitionScheme::kRandom:
      return "RP";
    case PartitionScheme::kBlock:
      return "BLOCK";
  }
  return "unknown";
}

Result<PartitionResult> PartitionHypergraph(
    const Hypergraph& hg, int32_t num_parts,
    const PartitionerOptions& options) {
  if (num_parts < 1) return Status::InvalidArgument("num_parts must be >= 1");
  if (num_parts > hg.num_vertices()) {
    return Status::InvalidArgument("more parts than vertices");
  }
  Rng rng(options.seed);
  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.assign(hg.num_vertices(), 0);
  std::vector<int32_t> identity(hg.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  // Imbalance compounds multiplicatively across the bisection levels, so
  // each level gets the depth-th root of the global tolerance.
  PartitionerOptions scheduled = options;
  const double depth =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(num_parts))));
  scheduled.epsilon = std::pow(1.0 + options.epsilon, 1.0 / depth) - 1.0;
  RecursiveBisect(hg, num_parts, 0, scheduled, &rng, identity,
                  &result.assignment);
  result.cut_cost = hg.ConnectivityMinusOne(result.assignment, num_parts);
  result.imbalance = Imbalance(hg, result.assignment, num_parts);
  return result;
}

PartitionResult PartitionRandom(const Hypergraph& hg, int32_t num_parts,
                                uint64_t seed) {
  Rng rng(seed);
  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.assign(hg.num_vertices(), 0);
  std::vector<int32_t> order(hg.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = hg.num_vertices() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(static_cast<uint64_t>(i) + 1)]);
  }
  // Round-robin over shuffled order: random placement, balanced counts.
  for (int32_t i = 0; i < hg.num_vertices(); ++i) {
    result.assignment[order[i]] = i % num_parts;
  }
  result.cut_cost = hg.ConnectivityMinusOne(result.assignment, num_parts);
  result.imbalance = Imbalance(hg, result.assignment, num_parts);
  return result;
}

PartitionResult PartitionBlock(const Hypergraph& hg, int32_t num_parts) {
  PartitionResult result;
  result.num_parts = num_parts;
  result.assignment.assign(hg.num_vertices(), 0);
  const int64_t total = hg.total_vertex_weight();
  int64_t acc = 0;
  for (int32_t v = 0; v < hg.num_vertices(); ++v) {
    int32_t part = static_cast<int32_t>(acc * num_parts / std::max<int64_t>(
        total, 1));
    part = std::min(part, num_parts - 1);
    result.assignment[v] = part;
    acc += hg.vertex_weight(v);
  }
  result.cut_cost = hg.ConnectivityMinusOne(result.assignment, num_parts);
  result.imbalance = Imbalance(hg, result.assignment, num_parts);
  return result;
}

}  // namespace fsd::part
