// Hypergraph structure used for model partitioning.
//
// FSD-Inference adapts the row-wise hypergraph model of Demirci &
// Ferhatosmanoglu (ICS'21): vertices are neuron rows, and each column j of a
// layer's weight matrix forms a net connecting the producer of activation
// row j with every consumer row holding a nonzero in column j. A net cut
// across parts costs one activation-row transfer per extra part touched
// (the connectivity-1 metric), which is exactly the per-layer communication
// volume of the distributed inference algorithm.
#ifndef FSD_PART_HYPERGRAPH_H_
#define FSD_PART_HYPERGRAPH_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fsd::part {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds from per-net pin lists. Pins must be valid vertex ids;
  /// duplicate pins within a net are deduplicated.
  static Hypergraph Build(int32_t num_vertices,
                          std::vector<int64_t> vertex_weights,
                          const std::vector<std::vector<int32_t>>& nets,
                          const std::vector<int64_t>& net_costs);

  int32_t num_vertices() const { return num_vertices_; }
  int64_t num_nets() const { return static_cast<int64_t>(net_ptr_.size()) - 1; }
  int64_t num_pins() const { return static_cast<int64_t>(pins_.size()); }

  int64_t vertex_weight(int32_t v) const { return vertex_weights_[v]; }
  int64_t total_vertex_weight() const { return total_vertex_weight_; }
  int64_t net_cost(int64_t e) const { return net_costs_[e]; }
  int64_t net_size(int64_t e) const { return net_ptr_[e + 1] - net_ptr_[e]; }

  /// Iterates pins of net e: fn(vertex).
  template <typename Fn>
  void ForEachPin(int64_t e, Fn fn) const {
    for (int64_t p = net_ptr_[e]; p < net_ptr_[e + 1]; ++p) fn(pins_[p]);
  }

  /// Iterates nets incident to vertex v: fn(net).
  template <typename Fn>
  void ForEachNetOf(int32_t v, Fn fn) const {
    for (int64_t p = vertex_ptr_[v]; p < vertex_ptr_[v + 1]; ++p) {
      fn(vertex_nets_[p]);
    }
  }

  /// Connectivity-1 cost of an assignment: sum over nets of
  /// cost * (parts touched - 1). This equals the total activation rows
  /// transferred per inference layer under the row-wise decomposition.
  int64_t ConnectivityMinusOne(const std::vector<int32_t>& assignment,
                               int32_t num_parts) const;

 private:
  int32_t num_vertices_ = 0;
  int64_t total_vertex_weight_ = 0;
  std::vector<int64_t> vertex_weights_;
  std::vector<int64_t> net_ptr_;
  std::vector<int32_t> pins_;
  std::vector<int64_t> net_costs_;
  // Inverse incidence (vertex -> nets)
  std::vector<int64_t> vertex_ptr_;
  std::vector<int64_t> vertex_nets_;
};

}  // namespace fsd::part

#endif  // FSD_PART_HYPERGRAPH_H_
