#include "part/model_partition.h"

#include <algorithm>
#include <map>

namespace fsd::part {

Hypergraph BuildDnnHypergraph(const model::SparseDnn& dnn,
                              int32_t sample_layers) {
  const int32_t n = dnn.neurons();
  const int32_t layers = std::min<int32_t>(sample_layers, dnn.layers());
  // Vertex weight: compute load of the row across sampled layers (+1 so
  // zero-load rows still carry placement weight).
  std::vector<int64_t> weights(n, 1);
  std::vector<std::vector<int32_t>> nets;
  std::vector<int64_t> costs;
  std::vector<std::vector<int32_t>> column_pins(n);
  for (int32_t k = 0; k < layers; ++k) {
    const linalg::CsrMatrix& w = dnn.weights[k];
    for (auto& pins : column_pins) pins.clear();
    for (int32_t i = 0; i < n; ++i) {
      weights[i] += w.RowNnz(i);
      w.ForEachInRow(i, [&](int32_t j, float) { column_pins[j].push_back(i); });
    }
    for (int32_t j = 0; j < n; ++j) {
      if (column_pins[j].empty()) continue;
      // Column-net: producer j plus every consumer row; cut cost is one
      // activation-row transfer per extra part.
      std::vector<int32_t> pins = column_pins[j];
      pins.push_back(j);
      nets.push_back(std::move(pins));
      costs.push_back(1);
    }
  }
  return Hypergraph::Build(n, std::move(weights), nets, costs);
}

uint64_t ModelPartition::WeightShareBytes(const model::SparseDnn& dnn,
                                          int32_t m) const {
  FSD_CHECK(m >= 0 && m < num_parts);
  uint64_t bytes = 0;
  for (const auto& w : dnn.weights) {
    for (int32_t row : owned_rows[m]) {
      bytes += 8 * static_cast<uint64_t>(w.RowNnz(row)) + 8;
    }
  }
  return bytes;
}

Result<ModelPartition> PartitionModel(const model::SparseDnn& dnn,
                                      int32_t num_parts,
                                      const ModelPartitionOptions& options) {
  if (num_parts < 1) return Status::InvalidArgument("num_parts must be >= 1");
  if (num_parts > dnn.neurons()) {
    return Status::InvalidArgument("more workers than neuron rows");
  }

  ModelPartition out;
  out.scheme = options.scheme;
  out.num_parts = num_parts;

  if (num_parts == 1) {
    out.assignment.assign(dnn.neurons(), 0);
    out.owned_rows.resize(1);
    out.owned_rows[0].resize(dnn.neurons());
    for (int32_t i = 0; i < dnn.neurons(); ++i) out.owned_rows[0][i] = i;
    out.layers.resize(dnn.layers());
    for (auto& layer : out.layers) {
      layer.send.resize(1);
      layer.recv.resize(1);
    }
    return out;
  }

  const Hypergraph hg =
      BuildDnnHypergraph(dnn, options.hypergraph_sample_layers);
  PartitionResult part;
  switch (options.scheme) {
    case PartitionScheme::kHypergraph: {
      PartitionerOptions popts = options.partitioner;
      popts.seed = options.seed;
      FSD_ASSIGN_OR_RETURN(part, PartitionHypergraph(hg, num_parts, popts));
      break;
    }
    case PartitionScheme::kRandom:
      part = PartitionRandom(hg, num_parts, options.seed);
      break;
    case PartitionScheme::kBlock:
      part = PartitionBlock(hg, num_parts);
      break;
  }
  out.assignment = std::move(part.assignment);
  out.cut_cost = part.cut_cost;
  out.imbalance = part.imbalance;
  out.owned_rows.resize(num_parts);
  for (int32_t i = 0; i < dnn.neurons(); ++i) {
    out.owned_rows[out.assignment[i]].push_back(i);
  }

  // Per-layer send/recv maps. For layer k, worker owning row j of x^{k-1}
  // must ship it to every other worker holding a nonzero in column j of
  // W^k. Deduplicate (column, consumer) pairs with a stamp array.
  const int32_t n = dnn.neurons();
  out.layers.resize(dnn.layers());
  std::vector<int32_t> stamp(static_cast<size_t>(n) * num_parts, -1);
  for (int32_t k = 0; k < dnn.layers(); ++k) {
    LayerComm& comm = out.layers[k];
    comm.send.resize(num_parts);
    comm.recv.resize(num_parts);
    // pair list: (owner, consumer, row)
    std::map<std::pair<int32_t, int32_t>, std::vector<int32_t>> transfers;
    const linalg::CsrMatrix& w = dnn.weights[k];
    for (int32_t i = 0; i < n; ++i) {
      const int32_t consumer = out.assignment[i];
      w.ForEachInRow(i, [&](int32_t j, float) {
        const int32_t owner = out.assignment[j];
        if (owner == consumer) return;
        const size_t key = static_cast<size_t>(j) * num_parts + consumer;
        if (stamp[key] == k) return;
        stamp[key] = k;
        transfers[{owner, consumer}].push_back(j);
      });
    }
    for (auto& [pair, rows] : transfers) {
      std::sort(rows.begin(), rows.end());
      out.total_row_transfers += static_cast<int64_t>(rows.size());
      comm.send[pair.first].push_back({pair.second, rows});
      comm.recv[pair.second].push_back({pair.first, std::move(rows)});
    }
    for (auto& entries : comm.send) {
      std::sort(entries.begin(), entries.end(),
                [](const SendEntry& a, const SendEntry& b) {
                  return a.peer < b.peer;
                });
    }
    for (auto& entries : comm.recv) {
      std::sort(entries.begin(), entries.end(),
                [](const SendEntry& a, const SendEntry& b) {
                  return a.peer < b.peer;
                });
    }
  }
  return out;
}

}  // namespace fsd::part
