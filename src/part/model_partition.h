// Bridges the partitioner and the model: produces the per-worker row
// ownership and the per-layer send/receive maps (X^send_k / X^recv_k in the
// paper's notation) that drive the FSI algorithms.
#ifndef FSD_PART_MODEL_PARTITION_H_
#define FSD_PART_MODEL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/sparse_dnn.h"
#include "part/hypergraph.h"
#include "part/partitioner.h"

namespace fsd::part {

struct ModelPartitionOptions {
  PartitionScheme scheme = PartitionScheme::kHypergraph;
  /// Layers sampled when building the hypergraph (the generator's layers
  /// share connectivity structure, so a couple are representative; PaToH in
  /// the paper also partitions the model once, offline).
  int32_t hypergraph_sample_layers = 2;
  PartitionerOptions partitioner;
  uint64_t seed = 123;
};

/// One worker's sends for one layer: target worker and the x^{k-1} row ids
/// to ship (static map derived from weight structure; at run time rows with
/// no active values are communicated as empty markers).
struct SendEntry {
  int32_t peer = 0;                ///< target (send) or source (recv) worker
  std::vector<int32_t> rows;       ///< sorted global row ids
};

struct LayerComm {
  /// send[m] — entries sorted by target; communication feeding layer k's
  /// multiply (rows of x^{k-1}).
  std::vector<std::vector<SendEntry>> send;
  /// recv[m] — mirror of send, sorted by source.
  std::vector<std::vector<SendEntry>> recv;
};

struct ModelPartition {
  PartitionScheme scheme = PartitionScheme::kHypergraph;
  int32_t num_parts = 0;
  std::vector<int32_t> assignment;              ///< row -> worker
  std::vector<std::vector<int32_t>> owned_rows; ///< worker -> sorted rows
  std::vector<LayerComm> layers;                ///< size = model layers

  /// Total (row, target) transfer pairs summed over layers — the static
  /// communication volume the partitioner minimizes.
  int64_t total_row_transfers = 0;
  /// Partitioner-reported connectivity-1 objective (hypergraph scheme).
  int64_t cut_cost = 0;
  double imbalance = 0.0;

  /// Serialized bytes of worker `m`'s weight share (for model-load
  /// latency/memory sizing): 8 bytes per nonzero + row metadata.
  uint64_t WeightShareBytes(const model::SparseDnn& dnn, int32_t m) const;
};

/// Builds the partitioning hypergraph from (a sample of) the model layers.
Hypergraph BuildDnnHypergraph(const model::SparseDnn& dnn,
                              int32_t sample_layers);

/// Partitions `dnn` row-wise across `num_parts` workers and derives all
/// per-layer send/recv maps.
Result<ModelPartition> PartitionModel(const model::SparseDnn& dnn,
                                      int32_t num_parts,
                                      const ModelPartitionOptions& options);

}  // namespace fsd::part

#endif  // FSD_PART_MODEL_PARTITION_H_
