// Multilevel hypergraph partitioner (the repository's from-scratch PaToH
// substitute) plus the simple baselines the paper compares against.
//
// Pipeline per bisection: heavy-connectivity coarsening -> greedy growth
// initial partition (best of several seeded restarts) -> FM boundary
// refinement at every level of the hierarchy. K-way partitions are produced
// by recursive bisection with proportional weight targets.
#ifndef FSD_PART_PARTITIONER_H_
#define FSD_PART_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "part/hypergraph.h"

namespace fsd::part {

struct PartitionerOptions {
  /// Allowed imbalance: max part weight <= (1 + epsilon) * ideal.
  double epsilon = 0.10;
  /// Stop coarsening below this many vertices.
  int32_t coarsen_to = 160;
  /// Maximum coarsening levels (safety bound).
  int32_t max_levels = 24;
  /// Greedy-growth restarts for the initial bisection.
  int32_t initial_restarts = 4;
  /// FM passes per level.
  int32_t fm_passes = 4;
  uint64_t seed = 99;
};

/// Scheme names follow the paper: HGP-DNN (hypergraph), RP (random),
/// plus contiguous block partitioning as an additional baseline.
enum class PartitionScheme { kHypergraph, kRandom, kBlock };

std::string_view PartitionSchemeName(PartitionScheme scheme);

/// Result of partitioning: assignment[v] in [0, num_parts).
struct PartitionResult {
  std::vector<int32_t> assignment;
  int32_t num_parts = 0;
  int64_t cut_cost = 0;        ///< connectivity-1 objective
  double imbalance = 0.0;      ///< max part weight / ideal - 1
};

/// Partitions `hg` into `num_parts` using the multilevel algorithm.
Result<PartitionResult> PartitionHypergraph(const Hypergraph& hg,
                                            int32_t num_parts,
                                            const PartitionerOptions& options);

/// Random assignment baseline (the paper's RP), weight-balanced by
/// round-robin over a shuffled vertex order.
PartitionResult PartitionRandom(const Hypergraph& hg, int32_t num_parts,
                                uint64_t seed);

/// Contiguous block baseline: vertices [0,N) split into equal-weight runs.
PartitionResult PartitionBlock(const Hypergraph& hg, int32_t num_parts);

}  // namespace fsd::part

#endif  // FSD_PART_PARTITIONER_H_
