#include "sim/simulation.h"

#include <algorithm>

#include "common/logging.h"

namespace fsd::sim {
namespace {

/// Internal control-flow exception used solely to unwind user stacks of
/// processes that are still blocked when the Simulation is destroyed. It is
/// never thrown across the public API.
struct ProcessKilled {};

const std::string kSchedulerName = "scheduler";

}  // namespace

void SimSignal::Fire() {
  // During teardown, destructors on concurrently unwinding process stacks
  // may fire signals; waking waiters then would race on the event heap
  // (and the waiters are being killed anyway).
  if (sim_->tearing_down()) return;
  if (fired_) return;
  fired_ = true;
  for (uint64_t pid : waiting_pids_) sim_->WakeNow(pid);
  waiting_pids_.clear();
}

Simulation::~Simulation() {
  // Make every kernel entry point inert before waking the victims: their
  // unwinding stacks may re-enter the simulation (see tearing_down()).
  tearing_down_.store(true, std::memory_order_release);
  // Unwind any still-blocked processes so their threads can be joined.
  for (auto& p : processes_) {
    if (p->finished || !p->thread.joinable()) continue;
    {
      std::lock_guard<std::mutex> lock(p->mutex);
      p->wait_satisfied = false;
      p->runnable = true;
      p->killed = true;
      p->cv.notify_all();
    }
  }
  for (auto& p : processes_) {
    if (p->thread.joinable()) p->thread.join();
  }
}

ProcessHandle Simulation::AddProcess(std::string name,
                                     std::function<void()> body,
                                     SimTime start) {
  // Spawning a thread while the destructor joins the existing ones would
  // mutate processes_ under its feet; refuse with an inert handle.
  if (tearing_down()) return ProcessHandle(std::make_shared<SimSignal>(this));
  auto proc = std::make_unique<Process>();
  Process* p = proc.get();
  p->pid = next_pid_++;
  p->name = std::move(name);
  p->body = std::move(body);
  p->done = MakeSignal();
  ++live_processes_;
  processes_.push_back(std::move(proc));

  p->thread = std::thread([this, p]() {
    {
      std::unique_lock<std::mutex> lock(p->mutex);
      p->cv.wait(lock, [p] { return p->runnable; });
      if (p->killed) {
        p->finished = true;
        p->yielded = true;
        p->cv.notify_all();
        return;
      }
    }
    try {
      p->body();
    } catch (const ProcessKilled&) {
      // Simulation teardown: multiple killed threads unwind concurrently, so
      // only touch this process's own state — never shared kernel state.
      std::lock_guard<std::mutex> lock(p->mutex);
      p->finished = true;
      p->yielded = true;
      p->cv.notify_all();
      return;
    }
    FinishProcess(p);
  });

  Event ev;
  ev.time = now_ + start;
  ev.seq = next_seq_++;
  ev.pid = p->pid;
  ev.is_callback = false;
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EventAfter());
  return ProcessHandle(p->done);
}

void Simulation::Run(SimTime until) {
  FSD_CHECK(!in_run_);
  in_run_ = true;
  while (!events_.empty()) {
    if (until >= 0.0 && events_.front().time > until) {
      now_ = until;  // leave the event queued for a later Run()
      break;
    }
    std::pop_heap(events_.begin(), events_.end(), EventAfter());
    Event ev = std::move(events_.back());
    events_.pop_back();
    FSD_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ++events_dispatched_;
    if (ev.is_callback) {
      ev.callback();
      continue;
    }
    Process* p = FindProcess(ev.pid);
    if (p == nullptr || p->finished) continue;
    if (ev.is_timeout && ev.epoch != p->wait_epoch) continue;  // stale
    ResumeProcess(p);
  }
  if (events_.empty() && live_processes_ > 0) {
    FSD_LOG(kWarn, "simulation drained with %d live process(es) blocked",
            live_processes_);
  }
  in_run_ = false;
}

Simulation::Process* Simulation::FindProcess(uint64_t pid) const {
  // Pids are assigned sequentially from 1 and processes are never removed,
  // so the vector doubles as the pid index.
  if (pid == 0 || pid > processes_.size()) return nullptr;
  return processes_[pid - 1].get();
}

void Simulation::ResumeProcess(Process* p) {
  FSD_CHECK(running_ == nullptr);
  running_ = p;
  {
    std::lock_guard<std::mutex> lock(p->mutex);
    p->runnable = true;
    p->yielded = false;
    p->cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(p->mutex);
    p->cv.wait(lock, [p] { return p->yielded; });
  }
  running_ = nullptr;
}

void Simulation::YieldToScheduler(Process* p) {
  std::unique_lock<std::mutex> lock(p->mutex);
  p->runnable = false;
  p->yielded = true;
  p->cv.notify_all();
  p->cv.wait(lock, [p] { return p->runnable; });
  if (p->killed) throw ProcessKilled{};
}

void Simulation::FinishProcess(Process* p) {
  p->done->Fire();  // wakes joiners; safe: scheduler is parked on our yield
  p->finished = true;
  --live_processes_;
  std::lock_guard<std::mutex> lock(p->mutex);
  p->yielded = true;
  p->cv.notify_all();
}

void Simulation::ScheduleWake(Process* p, SimTime delay, bool is_timeout,
                              uint64_t epoch) {
  FSD_CHECK_GE(delay, 0.0);
  Event ev;
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.pid = p->pid;
  ev.is_callback = false;
  ev.is_timeout = is_timeout;
  ev.epoch = epoch;
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EventAfter());
}

void Simulation::WakeNow(uint64_t pid) {
  if (tearing_down()) return;
  Process* p = FindProcess(pid);
  if (p == nullptr || p->finished) return;
  p->wait_satisfied = true;
  ++p->wait_epoch;  // invalidate any pending timeout event
  ScheduleWake(p, 0.0, /*is_timeout=*/false, /*epoch=*/0);
}

void Simulation::ScheduleCallback(SimTime delay, std::function<void()> fn) {
  if (tearing_down()) return;  // no scheduler will ever dispatch it
  FSD_CHECK_GE(delay, 0.0);
  Event ev;
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.pid = 0;
  ev.is_callback = true;
  ev.callback = std::move(fn);
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EventAfter());
}

void Simulation::Hold(SimTime dt) {
  if (tearing_down()) return;  // called from a destructor mid-unwind
  Process* p = running_;
  FSD_CHECK(p != nullptr);
  ScheduleWake(p, dt, /*is_timeout=*/false, /*epoch=*/0);
  YieldToScheduler(p);
}

bool Simulation::WaitSignal(SimSignal* signal, SimTime timeout) {
  if (tearing_down()) return signal->fired();
  if (signal->fired()) return true;
  Process* p = running_;
  FSD_CHECK(p != nullptr);
  signal->waiting_pids_.push_back(p->pid);
  p->wait_satisfied = false;
  ++p->wait_epoch;
  if (timeout >= 0.0) {
    ScheduleWake(p, timeout, /*is_timeout=*/true, p->wait_epoch);
  }
  YieldToScheduler(p);
  const bool fired = p->wait_satisfied;
  if (!fired) {
    // Timed out: de-register so a later Fire cannot wake us spuriously.
    auto& pids = signal->waiting_pids_;
    pids.erase(std::remove(pids.begin(), pids.end(), p->pid), pids.end());
  }
  return fired;
}

ProcessHandle Simulation::Spawn(std::string name, std::function<void()> body) {
  return AddProcess(std::move(name), std::move(body), 0.0);
}

void Simulation::Join(const ProcessHandle& handle) {
  FSD_CHECK(handle.done_signal() != nullptr);
  WaitSignal(handle.done_signal().get());
}

const std::string& Simulation::CurrentProcessName() const {
  return running_ != nullptr ? running_->name : kSchedulerName;
}

SimTime ParallelMakespan(const std::vector<SimTime>& latencies, int lanes) {
  if (latencies.empty()) return 0.0;
  if (lanes < 1) lanes = 1;
  std::vector<SimTime> lane_free(static_cast<size_t>(lanes), 0.0);
  SimTime makespan = 0.0;
  for (SimTime latency : latencies) {
    auto it = std::min_element(lane_free.begin(), lane_free.end());
    *it += latency;
    makespan = std::max(makespan, *it);
  }
  return makespan;
}

}  // namespace fsd::sim
