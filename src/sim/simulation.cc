#include "sim/simulation.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace fsd::sim {
namespace {

/// Internal control-flow exception used solely to unwind user stacks of
/// processes that are still blocked when the Simulation is destroyed. It is
/// never thrown across the public API.
struct ProcessKilled {};

const std::string kSchedulerName = "scheduler";

#if FSD_SIM_HAS_FIBERS
/// Fiber stacks hold real workload code (worker trees run whole inference
/// passes inside processes), so they must match what an OS thread would
/// offer; 8 MiB per LIVE fiber (allocated at first resume, freed at reap)
/// costs only the lazily-committed pages actually touched.
constexpr size_t kFiberStackBytes = 8u << 20;
#endif

}  // namespace

void SimSignal::Fire() {
  // During teardown, destructors on concurrently unwinding process stacks
  // may fire signals; waking waiters then would race on the event heap
  // (and the waiters are being killed anyway).
  if (sim_->tearing_down()) return;
  if (fired_) return;
  fired_ = true;
  for (uint64_t pid : waiting_pids_) sim_->WakeNow(pid);
  waiting_pids_.clear();
}

Simulation::~Simulation() {
  // Make every kernel entry point inert before waking the victims: their
  // unwinding stacks may re-enter the simulation (see tearing_down()).
  tearing_down_.store(true, std::memory_order_release);
  // Offloaded closures reference buffers on the submitting processes'
  // stacks, so the pool must be fully quiesced BEFORE any process stack is
  // unwound or freed. Submitters blocked on their completion wake are
  // unwound below via ProcessKilled and never reach their acquire, so
  // discarding their queued jobs is safe.
  DrainOffloadPool();
#if FSD_SIM_HAS_FIBERS
  if (fibers_) {
    // Resume each still-blocked fiber once with the kill flag set: its
    // YieldToScheduler observes the flag, throws, and the stack unwinds
    // back through the trampoline to this swapcontext. Never-started
    // fibers have no stack to unwind.
    for (auto& p : processes_) {
      if (p == nullptr || p->finished || !p->started) continue;
      p->killed = true;
      swapcontext(&sched_context_, &p->context);
    }
    return;  // no worker threads exist on the fiber tier
  }
#endif
  // Unwind any still-blocked process: mark it killed and wake its worker
  // once, so the blocked YieldToScheduler (or the pre-start wait) observes
  // the kill. Fast-path processes that never started have no worker — and
  // no thread — so there is nothing to unwind.
  for (auto& p : processes_) {
    if (p == nullptr || p->finished || p->worker == nullptr) continue;
    Worker* w = p->worker;
    p->killed = true;
    if (tuning_.fast_handoff) {
      w->run_sem.release();
    } else {
      std::lock_guard<std::mutex> lock(w->mutex);
      w->runnable = true;
      w->cv.notify_all();
    }
  }
  // Shut down pool workers parked between assignments.
  for (Worker* w : idle_workers_) {
    w->shutdown = true;
    if (tuning_.fast_handoff) {
      w->run_sem.release();
    } else {
      std::lock_guard<std::mutex> lock(w->mutex);
      w->runnable = true;
      w->cv.notify_all();
    }
  }
  for (auto& w : workers_) {
    if (w != nullptr && w->thread.joinable()) w->thread.join();
  }
}

void Simulation::WorkerMain(Worker* w) {
  for (;;) {
    // Wait for an assignment (pool) / this process's first resume
    // (dedicated thread), or for teardown.
    if (tuning_.fast_handoff) {
      w->run_sem.acquire();
    } else {
      std::unique_lock<std::mutex> lock(w->mutex);
      w->cv.wait(lock, [w] { return w->runnable; });
    }
    if (w->shutdown) return;
    Process* p = w->proc;
    if (p->killed) {
      // Killed before the body ever entered (teardown unwound us while the
      // start event was still queued). The destructor's join is the only
      // reader past this point.
      p->finished = true;
      return;
    }
    try {
      p->body();
    } catch (const ProcessKilled&) {
      // Simulation teardown: multiple killed threads unwind concurrently,
      // so only touch this process's own state — never shared kernel state.
      p->finished = true;
      return;
    }
    FinishProcess(p);
    w->proc = nullptr;
    if (!tuning_.reuse_threads) {
      // Dedicated thread: hand control back and exit; the scheduler joins
      // us when it reaps the process.
      SignalYield(w);
      return;
    }
    // Pool thread: return to the idle stack BEFORE yielding — the
    // scheduler is parked on our yield, so the push cannot race.
    idle_workers_.push_back(w);
    SignalYield(w);
  }
}

void Simulation::SignalYield(Worker* w) {
  if (tuning_.fast_handoff) {
    w->yield_sem.release();
  } else {
    std::lock_guard<std::mutex> lock(w->mutex);
    w->runnable = false;
    w->yielded = true;
    w->cv.notify_all();
  }
}

ProcessHandle Simulation::AddProcess(std::string name,
                                     std::function<void()> body,
                                     SimTime start) {
  // Spawning a thread while the destructor joins the existing ones would
  // mutate processes_ under its feet; refuse with an inert handle.
  if (tearing_down()) return ProcessHandle(std::make_shared<SimSignal>(this));
  auto proc = std::make_unique<Process>();
  Process* p = proc.get();
  p->pid = next_pid_++;
  p->name = std::move(name);
  p->body = std::move(body);
  p->done = MakeSignal();
  ++live_processes_;
  processes_.push_back(std::move(proc));

  if (!fibers_ && !tuning_.reuse_threads) {
    // Legacy tier: dedicate an OS thread to the process up front (it idles
    // until the start event dispatches). The fast tiers instead bind a
    // pooled thread (or allocate a fiber) lazily at first resume — a
    // never-started process then costs no thread or stack at all.
    auto owned = std::make_unique<Worker>();
    Worker* w = owned.get();
    w->index = workers_.size();
    w->proc = p;
    p->worker = w;
    workers_.push_back(std::move(owned));
    w->thread = std::thread([this, w] { WorkerMain(w); });
  }

  PushEvent(start, p->pid, /*epoch=*/0, EventKind::kWake);
  return ProcessHandle(p->done);
}

void Simulation::Run(SimTime until) {
  FSD_CHECK(!in_run_);
  in_run_ = true;
  while (!events_.empty()) {
    if (until >= 0.0 && events_.front().time > until) {
      now_ = until;  // leave the event queued for a later Run()
      break;
    }
    std::pop_heap(events_.begin(), events_.end(), EventAfter());
    const Event ev = events_.back();
    events_.pop_back();
    FSD_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ++events_dispatched_;
    if (ev.kind == EventKind::kCallback) {
      std::function<void()> fn = std::move(callback_slots_[ev.target]);
      callback_slots_[ev.target] = nullptr;
      // Recycle the slot before running: the callback may schedule again.
      free_slots_.push_back(static_cast<uint32_t>(ev.target));
      fn();
      continue;
    }
    Process* p = FindProcess(ev.target);
    if (p == nullptr || p->finished) continue;
    if (ev.kind == EventKind::kTimeout && ev.epoch != p->wait_epoch) {
      continue;  // stale
    }
    ResumeProcess(p);
  }
  if (events_.empty() && live_processes_ > 0) {
    FSD_LOG(kWarn, "simulation drained with %d live process(es) blocked",
            live_processes_);
  }
  in_run_ = false;
}

Simulation::Process* Simulation::FindProcess(uint64_t pid) const {
  // Pids are assigned sequentially from 1, so the vector doubles as the
  // pid index; reaped (finished) processes leave a null slot behind.
  if (pid == 0 || pid > processes_.size()) return nullptr;
  return processes_[pid - 1].get();
}

void Simulation::BindWorker(Process* p) {
  Worker* w;
  if (!idle_workers_.empty()) {
    w = idle_workers_.back();
    idle_workers_.pop_back();
  } else {
    auto owned = std::make_unique<Worker>();
    w = owned.get();
    w->index = workers_.size();
    workers_.push_back(std::move(owned));
    w->thread = std::thread([this, w] { WorkerMain(w); });
  }
  w->proc = p;
  p->worker = w;
}

void Simulation::ResumeProcess(Process* p) {
  FSD_CHECK(running_ == nullptr);
  running_ = p;
#if FSD_SIM_HAS_FIBERS
  if (fibers_) {
    if (!p->started) {
      p->started = true;
      StartFiber(p);
    }
    swapcontext(&sched_context_, &p->context);
    running_ = nullptr;
    if (p->finished) ReapProcess(p);
    return;
  }
#endif
  if (!p->started) {
    p->started = true;
    if (p->worker == nullptr) BindWorker(p);
  }
  Worker* w = p->worker;
  if (tuning_.fast_handoff) {
    w->run_sem.release();
    w->yield_sem.acquire();
  } else {
    {
      std::lock_guard<std::mutex> lock(w->mutex);
      w->runnable = true;
      w->yielded = false;
      w->cv.notify_all();
    }
    {
      std::unique_lock<std::mutex> lock(w->mutex);
      w->cv.wait(lock, [w] { return w->yielded; });
    }
  }
  running_ = nullptr;
  if (p->finished) ReapProcess(p);
}

void Simulation::ReapProcess(Process* p) {
  // A finished process's slot (name, body captures, signal ref) is dead
  // weight — a million-query replay must not accumulate it. Dedicated
  // (non-pool) threads are joined here too, so the legacy tier never
  // stacks up unjoined threads across a long run.
  Worker* w = p->worker;
  if (w != nullptr && !tuning_.reuse_threads) {
    if (w->thread.joinable()) w->thread.join();
    workers_[w->index].reset();
  }
  processes_[p->pid - 1].reset();
}

void Simulation::YieldToScheduler(Process* p) {
#if FSD_SIM_HAS_FIBERS
  if (fibers_) {
    swapcontext(&p->context, &sched_context_);
    if (p->killed) throw ProcessKilled{};
    return;
  }
#endif
  Worker* w = p->worker;
  if (tuning_.fast_handoff) {
    w->yield_sem.release();
    w->run_sem.acquire();
  } else {
    std::unique_lock<std::mutex> lock(w->mutex);
    w->runnable = false;
    w->yielded = true;
    w->cv.notify_all();
    w->cv.wait(lock, [w] { return w->runnable; });
  }
  if (p->killed) throw ProcessKilled{};
}

#if FSD_SIM_HAS_FIBERS
void Simulation::StartFiber(Process* p) {
  p->sim = this;
  p->stack.reset(new char[kFiberStackBytes]);
  getcontext(&p->context);
  p->context.uc_stack.ss_sp = p->stack.get();
  p->context.uc_stack.ss_size = kFiberStackBytes;
  p->context.uc_link = &sched_context_;
  const uint64_t bits = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(p));
  makecontext(&p->context,
              reinterpret_cast<void (*)()>(&Simulation::FiberTrampoline), 2,
              static_cast<unsigned int>(bits >> 32),
              static_cast<unsigned int>(bits & 0xFFFFFFFFu));
}

void Simulation::FiberTrampoline(unsigned int hi, unsigned int lo) {
  const uint64_t bits = (static_cast<uint64_t>(hi) << 32) | lo;
  Process* p = reinterpret_cast<Process*>(static_cast<uintptr_t>(bits));
  Simulation* sim = p->sim;
  try {
    p->body();
    sim->FinishProcess(p);
  } catch (const ProcessKilled&) {
    // Teardown unwind: only this process's own state may be touched.
    p->finished = true;
  }
  // Hand control back for the last time; the scheduler (or the tearing-
  // down destructor) reaps the process, freeing this very stack only
  // after the switch completes.
  swapcontext(&p->context, &sim->sched_context_);
}
#endif

void Simulation::FinishProcess(Process* p) {
  p->done->Fire();  // wakes joiners; safe: scheduler is parked on our yield
  p->finished = true;
  --live_processes_;
}

void Simulation::PushEvent(SimTime delay, uint64_t target, uint64_t epoch,
                           EventKind kind) {
  FSD_CHECK_GE(delay, 0.0);
  Event ev;
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.target = target;
  ev.epoch = epoch;
  ev.kind = kind;
  events_.push_back(ev);
  std::push_heap(events_.begin(), events_.end(), EventAfter());
}

void Simulation::ScheduleWake(Process* p, SimTime delay, bool is_timeout,
                              uint64_t epoch) {
  PushEvent(delay, p->pid, epoch,
            is_timeout ? EventKind::kTimeout : EventKind::kWake);
}

void Simulation::WakeNow(uint64_t pid) {
  if (tearing_down()) return;
  Process* p = FindProcess(pid);
  if (p == nullptr || p->finished) return;
  p->wait_satisfied = true;
  ++p->wait_epoch;  // invalidate any pending timeout event
  ScheduleWake(p, 0.0, /*is_timeout=*/false, /*epoch=*/0);
}

void Simulation::ScheduleCallback(SimTime delay, std::function<void()> fn) {
  if (tearing_down()) return;  // no scheduler will ever dispatch it
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    callback_slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(callback_slots_.size());
    callback_slots_.push_back(std::move(fn));
  }
  PushEvent(delay, slot, /*epoch=*/0, EventKind::kCallback);
}

void Simulation::Hold(SimTime dt) {
  if (tearing_down()) return;  // called from a destructor mid-unwind
  Process* p = running_;
  FSD_CHECK(p != nullptr);
  ScheduleWake(p, dt, /*is_timeout=*/false, /*epoch=*/0);
  YieldToScheduler(p);
}

void Simulation::Offload(SimTime duration, std::function<void()> fn) {
  Process* p = running_;
  if (tearing_down() || p == nullptr) {
    // Destructor unwind or scheduler context: no process to park, no pool
    // guaranteed alive. Run synchronously so the caller's side effects
    // still happen (e.g. a destructor flushing a buffer) and return.
    if (fn != nullptr) fn();
    return;
  }
  if (fn != nullptr) {
    ++offload_calls_;
    offload_virtual_s_ += duration;
  }
  // Uniform virtual-time path for every pool size: the completion event is
  // an ordinary wake at now+duration, scheduled BEFORE the yield, so event
  // (time, seq) order cannot depend on compute_threads. Only where the
  // closure physically executes differs — unobservable under the Offload
  // determinism contract (the submitter is blocked throughout).
  const bool pooled = fn != nullptr && tuning_.compute_threads > 0;
  if (pooled) {
    EnsureOffloadPool();
    {
      std::lock_guard<std::mutex> lock(offload_pool_->mutex);
      offload_pool_->queue.push_back(OffloadJob{std::move(fn), &p->offload_sem});
    }
    offload_pool_->cv.notify_one();
  }
  ScheduleWake(p, duration, /*is_timeout=*/false, /*epoch=*/0);
  YieldToScheduler(p);  // throws ProcessKilled at teardown — before acquire
  if (pooled) {
    // Join the closure. Usually a no-op: the pool had the whole virtual
    // window's worth of wall time to finish it.
    p->offload_sem.acquire();
  } else if (fn != nullptr) {
    fn();  // inline tier: run at the resume point, after the window
  }
}

OffloadStats Simulation::offload_stats() const {
  OffloadStats stats;
  stats.calls = offload_calls_;
  stats.virtual_s = offload_virtual_s_;
  if (offload_pool_ != nullptr) {
    std::lock_guard<std::mutex> lock(offload_pool_->mutex);
    stats.pool_runs = offload_pool_->runs;
    stats.pool_busy_wall_s = offload_pool_->busy_wall_s;
  }
  return stats;
}

void Simulation::EnsureOffloadPool() {
  if (offload_pool_ != nullptr) return;
  offload_pool_ = std::make_unique<OffloadPool>();
  const int n = tuning_.compute_threads;
  offload_pool_->threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    offload_pool_->threads.emplace_back([this] { OffloadWorkerMain(); });
  }
}

void Simulation::OffloadWorkerMain() {
  OffloadPool* pool = offload_pool_.get();
  for (;;) {
    OffloadJob job;
    {
      std::unique_lock<std::mutex> lock(pool->mutex);
      pool->cv.wait(lock,
                    [pool] { return pool->shutdown || !pool->queue.empty(); });
      if (pool->queue.empty()) return;  // shutdown, nothing left to run
      job = std::move(pool->queue.front());
      pool->queue.pop_front();
      ++pool->active;
    }
    const auto wall_start = std::chrono::steady_clock::now();
    job.fn();
    const double busy =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    // Publish completion to the parked submitter first, then retire the
    // job; the semaphore release carries the happens-before edge for the
    // closure's writes.
    job.done->release();
    {
      std::lock_guard<std::mutex> lock(pool->mutex);
      --pool->active;
      ++pool->runs;
      pool->busy_wall_s += busy;
    }
    pool->idle_cv.notify_all();
  }
}

void Simulation::DrainOffloadPool() {
  if (offload_pool_ == nullptr) return;
  OffloadPool* pool = offload_pool_.get();
  {
    std::unique_lock<std::mutex> lock(pool->mutex);
    // Queued-but-unstarted jobs are discarded: their submitters are about
    // to be unwound with ProcessKilled and never reach the acquire.
    pool->queue.clear();
    pool->shutdown = true;
    // In-flight closures still reference live process stacks — wait them
    // out before any unwind begins.
    pool->idle_cv.wait(lock, [pool] { return pool->active == 0; });
  }
  pool->cv.notify_all();
  for (std::thread& t : pool->threads) t.join();
}

bool Simulation::WaitSignal(SimSignal* signal, SimTime timeout) {
  if (tearing_down()) return signal->fired();
  if (signal->fired()) return true;
  Process* p = running_;
  FSD_CHECK(p != nullptr);
  signal->waiting_pids_.push_back(p->pid);
  p->wait_satisfied = false;
  ++p->wait_epoch;
  if (timeout >= 0.0) {
    ScheduleWake(p, timeout, /*is_timeout=*/true, p->wait_epoch);
  }
  YieldToScheduler(p);
  const bool fired = p->wait_satisfied;
  if (!fired) {
    // Timed out: de-register so a later Fire cannot wake us spuriously.
    auto& pids = signal->waiting_pids_;
    pids.erase(std::remove(pids.begin(), pids.end(), p->pid), pids.end());
  }
  return fired;
}

ProcessHandle Simulation::Spawn(std::string name, std::function<void()> body) {
  return AddProcess(std::move(name), std::move(body), 0.0);
}

void Simulation::Join(const ProcessHandle& handle) {
  FSD_CHECK(handle.done_signal() != nullptr);
  WaitSignal(handle.done_signal().get());
}

const std::string& Simulation::CurrentProcessName() const {
  return running_ != nullptr ? running_->name : kSchedulerName;
}

SimTime ParallelMakespan(const std::vector<SimTime>& latencies, int lanes) {
  if (latencies.empty()) return 0.0;
  if (lanes < 1) lanes = 1;
  std::vector<SimTime> lane_free(static_cast<size_t>(lanes), 0.0);
  SimTime makespan = 0.0;
  for (SimTime latency : latencies) {
    auto it = std::min_element(lane_free.begin(), lane_free.end());
    *it += latency;
    makespan = std::max(makespan, *it);
  }
  return makespan;
}

}  // namespace fsd::sim
