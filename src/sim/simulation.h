// Process-oriented discrete-event simulation (DES) kernel.
//
// The kernel drives "processes" — user functions that run on dedicated OS
// threads but execute strictly one at a time under the scheduler's control
// (SimPy-style cooperative simulation). Virtual time only advances between
// events; a process blocks by calling Hold()/Wait*() which hands control
// back to the scheduler. Because exactly one process is ever runnable and
// the event queue orders by (time, sequence), simulations are fully
// deterministic and race-free regardless of host scheduling.
//
// Three per-event cost tiers exist (SimTuning): the default runs process
// bodies as single-thread FIBERS (ucontext) — a handoff is one user-space
// stack switch, no OS scheduling at all, which is what lets a trace replay
// push millions of events through on one core. Where fibers are
// unavailable (sanitized builds instrument stack switches poorly) the
// fast path binds process bodies lazily to a reused pool of worker
// threads and hands control over with a semaphore pair, and the legacy
// path reproduces the original thread-per-process + condition-variable
// kernel. Event ordering is byte-identical across all tiers — the tuning
// only changes HOW a decision already made by the event heap is carried
// out — so the legacy tier doubles as the measured pre-optimization
// baseline (bench_trace_replay) and as a cross-validation oracle
// (tests/sim_property_test.cc).
#ifndef FSD_SIM_SIMULATION_H_
#define FSD_SIM_SIMULATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

/// Fibers switch stacks under the sanitizers' feet (ASan's fake-stack and
/// TSan's shadow state both assume one stack per thread), so sanitized
/// builds fall back to the pooled-thread tier. Define FSD_SIM_NO_FIBERS to
/// force the fallback on any build.
#if defined(FSD_SIM_NO_FIBERS)
#define FSD_SIM_HAS_FIBERS 0
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FSD_SIM_HAS_FIBERS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FSD_SIM_HAS_FIBERS 0
#elif defined(__linux__)
#define FSD_SIM_HAS_FIBERS 1
#else
#define FSD_SIM_HAS_FIBERS 0
#endif
#elif defined(__linux__)
#define FSD_SIM_HAS_FIBERS 1
#else
#define FSD_SIM_HAS_FIBERS 0
#endif

#if FSD_SIM_HAS_FIBERS
#include <ucontext.h>
#endif

#include "common/check.h"

namespace fsd::sim {

class Simulation;

/// Virtual time in seconds.
using SimTime = double;

/// Kernel execution-cost knobs. Neither flag may change observable
/// simulation behaviour (event order, times, process semantics) — only the
/// wall-clock cost per event. Defaults are the fast path; Legacy() selects
/// the pre-optimization kernel for A/B measurement.
struct SimTuning {
  /// Run process bodies on a reused pool of worker threads, bound at first
  /// resume. Off: one OS thread is spawned per process at AddProcess (and
  /// joined at teardown), the original behaviour — at trace scale the
  /// dominant kernel cost. Only reached when fibers are off/unsupported.
  bool reuse_threads = true;
  /// Hand control between scheduler and process with a binary-semaphore
  /// pair. Off: the original mutex + condition-variable ping-pong with
  /// flag re-checks. Only reached when fibers are off/unsupported.
  bool fast_handoff = true;
  /// Run process bodies as ucontext fibers on the scheduler's own thread:
  /// a handoff is a user-space stack switch (~100ns) instead of an OS
  /// context-switch round trip — on a single-core host the difference is
  /// the whole kernel budget. Ignored (thread fallback) when the build
  /// lacks fiber support (FSD_SIM_HAS_FIBERS == 0: sanitizers, non-Linux).
  bool use_fibers = true;
  /// Real threads for Simulation::Offload closures. 0 runs every closure
  /// inline on the scheduler thread (today's behaviour); N overlaps
  /// closures from distinct processes across N host cores. Like the other
  /// knobs this must never change observable simulation behaviour — the
  /// closure's virtual cost is charged analytically either way, so event
  /// order, outputs and ledgers are byte-identical for every value.
  int compute_threads = 0;

  static SimTuning Legacy() {
    SimTuning tuning;
    tuning.reuse_threads = false;
    tuning.fast_handoff = false;
    tuning.use_fibers = false;
    return tuning;
  }
};

/// A waitable, one-shot signal processes can block on (with timeout).
/// Signals are created and consumed entirely inside the simulation; they are
/// the building block for queue wakeups, barriers and async completions.
class SimSignal {
 public:
  explicit SimSignal(Simulation* sim) : sim_(sim) {}

  /// Fires the signal, waking all current and future waiters immediately.
  void Fire();
  bool fired() const { return fired_; }
  /// Processes currently blocked on this signal (channel backends use this
  /// to skip re-arming arrival signals nobody is waiting for).
  bool has_waiters() const { return !waiting_pids_.empty(); }

 private:
  friend class Simulation;
  Simulation* sim_;
  bool fired_ = false;
  std::vector<uint64_t> waiting_pids_;
};

/// Handle to a spawned process; join-able from other processes.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  explicit ProcessHandle(std::shared_ptr<SimSignal> done)
      : done_(std::move(done)) {}
  const std::shared_ptr<SimSignal>& done_signal() const { return done_; }

 private:
  std::shared_ptr<SimSignal> done_;
};

/// Counters for the compute-offload layer (see Simulation::Offload).
/// `calls`/`virtual_s` are virtual-time facts and byte-identical across
/// every `compute_threads` value; `pool_runs`/`pool_busy_wall_s` describe
/// the real thread pool and are wall-clock (zero when compute_threads==0).
struct OffloadStats {
  uint64_t calls = 0;           ///< Offload() invocations carrying a closure
  double virtual_s = 0.0;       ///< total virtual seconds charged for them
  uint64_t pool_runs = 0;       ///< closures actually run on pool threads
  double pool_busy_wall_s = 0.0;  ///< wall seconds pool threads spent busy
};

/// The DES kernel. Not thread-safe from outside: construct, AddProcess, Run.
class Simulation {
 public:
  explicit Simulation(SimTuning tuning = SimTuning{})
      : tuning_(tuning),
        fibers_(FSD_SIM_HAS_FIBERS != 0 && tuning.use_fibers) {}
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Registers a root process to start at time `start`.
  /// Returns a handle whose done-signal fires when the process returns.
  ProcessHandle AddProcess(std::string name, std::function<void()> body,
                           SimTime start = 0.0);

  /// Runs until no events remain or `until` (if >= 0) is reached.
  void Run(SimTime until = -1.0);

  /// Current virtual time. Callable from within processes.
  SimTime Now() const { return now_; }

  /// ---- Process-context API (must be called from inside a process) ----

  /// Advances this process's virtual time by `dt` seconds.
  void Hold(SimTime dt);

  /// Blocks until `signal` fires, or until `timeout` elapses (timeout < 0
  /// waits forever). Returns true if the signal fired.
  bool WaitSignal(SimSignal* signal, SimTime timeout = -1.0);

  /// Spawns a child process starting immediately; returns a join handle.
  ProcessHandle Spawn(std::string name, std::function<void()> body);

  /// Blocks until the given process has finished.
  void Join(const ProcessHandle& handle);

  /// Creates a signal owned by the caller.
  std::shared_ptr<SimSignal> MakeSignal() {
    return std::make_shared<SimSignal>(this);
  }

  /// Schedules `fn` to run inside the scheduler at now+delay (no process
  /// context; used for service-side events like message delivery).
  void ScheduleCallback(SimTime delay, std::function<void()> fn);

  /// Runs `fn` while this process's virtual time advances by `duration`:
  /// the process yields, other events dispatch inside the virtual window
  /// [now, now+duration], and the process resumes at now+duration with
  /// `fn`'s side effects complete. With tuning().compute_threads == 0 the
  /// closure runs inline at the resume point; with N > 0 it runs on a real
  /// pool thread while the scheduler keeps dispatching — byte-identical
  /// virtual behaviour, better wall-clock.
  ///
  /// Determinism contract for `fn`: it may touch state owned by the
  /// calling process (which is blocked until the closure completes) and
  /// immutable shared data; it must not touch the Simulation, other
  /// processes' state, or any shared-mutable state, and it must not throw
  /// (capture a status instead and surface it after the call returns).
  /// A null `fn` is a plain virtual sleep (equivalent to Hold(duration)).
  void Offload(SimTime duration, std::function<void()> fn);

  /// Snapshot of the offload counters (see OffloadStats).
  OffloadStats offload_stats() const;

  /// Name of the currently running process (for logs/metrics).
  const std::string& CurrentProcessName() const;

  /// Number of processes that have not yet finished.
  int live_processes() const { return live_processes_; }

  /// True while the destructor unwinds still-blocked processes. Kernel
  /// entry points become inert no-ops in this window so that destructors
  /// running on killed-process stacks (which may legitimately call Hold,
  /// fire signals or schedule callbacks) can never deadlock, crash on a
  /// missing scheduler, or race on kernel state from concurrently
  /// unwinding threads.
  bool tearing_down() const {
    return tearing_down_.load(std::memory_order_acquire);
  }

  /// Total events dispatched (diagnostic).
  uint64_t events_dispatched() const { return events_dispatched_; }
  /// Events still queued (undispatched); after a run-to-completion Run()
  /// this is 0 — every scheduled event was dispatched or the simulation
  /// was torn down with the remainder drained.
  uint64_t pending_events() const {
    return static_cast<uint64_t>(events_.size());
  }

  const SimTuning& tuning() const { return tuning_; }

 private:
  friend class SimSignal;

  struct Process;

  /// One OS thread the kernel hands process bodies to. Fast path: bound to
  /// a process at its first resume and returned to an idle pool when the
  /// body finishes. Legacy path: created per process at AddProcess and
  /// never reused. Only one of the two handoff mechanisms is in use per
  /// Simulation (tuning().fast_handoff).
  struct Worker {
    std::thread thread;
    size_t index = 0;  // slot in workers_ (lets a reap free the husk)
    // Fast handoff: scheduler releases run_sem to transfer control to the
    // process; the process releases yield_sem to transfer it back. The
    // semaphore release/acquire pair carries the happens-before edge.
    std::binary_semaphore run_sem{0};
    std::binary_semaphore yield_sem{0};
    // Legacy handoff: flag ping-pong under the mutex.
    std::mutex mutex;
    std::condition_variable cv;
    bool runnable = false;  // scheduler -> process handoff flag
    bool yielded = true;    // process -> scheduler handoff flag
    Process* proc = nullptr;  // bound process (fast path; null when idle)
    bool shutdown = false;    // pool teardown flag (fast path)
  };

  struct Process {
    uint64_t pid = 0;
    std::string name;
    std::function<void()> body;
    bool started = false;         // body entered at least once
    bool finished = false;
    bool killed = false;          // set at teardown to unwind the stack
    bool wait_satisfied = false;  // signal-wait outcome
    uint64_t wait_epoch = 0;      // guards against stale timeout events
    std::shared_ptr<SimSignal> done;
    Worker* worker = nullptr;     // execution thread (null until bound)
    /// Released by a pool thread when this process's offloaded closure
    /// completes; acquired by the process after its completion wake.
    /// Processes are heap-allocated and never move, so the pool thread's
    /// pointer to this stays valid until the destructor drains the pool.
    std::binary_semaphore offload_sem{0};
#if FSD_SIM_HAS_FIBERS
    Simulation* sim = nullptr;    // back-pointer for the fiber trampoline
    ucontext_t context;           // fiber execution state
    std::unique_ptr<char[]> stack;  // fiber stack (lazily allocated)
#endif
  };

  /// One queued compute-offload closure plus the semaphore that reports
  /// its completion to the submitting process.
  struct OffloadJob {
    std::function<void()> fn;
    std::binary_semaphore* done = nullptr;
  };

  /// The real thread pool behind Offload (lazily created on first use when
  /// compute_threads > 0). Pool threads only ever touch the job queue, the
  /// submitted closures and the per-process completion semaphores — never
  /// kernel state — so the scheduler stays single-threaded.
  struct OffloadPool {
    std::mutex mutex;
    std::condition_variable cv;       // workers wait for jobs/shutdown
    std::condition_variable idle_cv;  // drain waits for active == 0
    std::deque<OffloadJob> queue;
    std::vector<std::thread> threads;
    int active = 0;        // jobs currently executing on pool threads
    bool shutdown = false;
    // Wall-clock pool counters (under mutex; see OffloadStats).
    uint64_t runs = 0;
    double busy_wall_s = 0.0;
  };

  enum class EventKind : uint8_t {
    kWake = 0,      // resume a process (start or Hold/signal wake)
    kTimeout = 1,   // signal-timeout wake (epoch-guarded)
    kCallback = 2,  // run a pooled callback slot in scheduler context
  };

  /// Trivially-copyable heap entry: callbacks live in a pooled slot vector
  /// (`target` indexes it) so heap sifts move 40 flat bytes instead of a
  /// std::function, and slot storage is recycled across events.
  struct Event {
    SimTime time = 0.0;
    uint64_t seq = 0;
    uint64_t target = 0;  // pid (kWake/kTimeout) or callback slot index
    uint64_t epoch = 0;
    EventKind kind = EventKind::kWake;
  };

  /// Max-heap comparator yielding earliest (time, seq) at the heap root.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Process* FindProcess(uint64_t pid) const;
  void PushEvent(SimTime delay, uint64_t target, uint64_t epoch,
                 EventKind kind);
  void ScheduleWake(Process* p, SimTime delay, bool is_timeout,
                    uint64_t epoch);
  void ResumeProcess(Process* p);
  void YieldToScheduler(Process* p);
  void WakeNow(uint64_t pid);
  void FinishProcess(Process* p);
  /// Binds `p` to an idle (or new) pool worker — fast path, first resume.
  void BindWorker(Process* p);
  /// Worker-thread main loop (both thread models share it; the handshake
  /// flavour and the reuse decision come from tuning_).
  void WorkerMain(Worker* w);
  /// Process -> scheduler handoff half, callable from the worker thread.
  void SignalYield(Worker* w);
  /// Frees a finished process's slot (and joins + frees its dedicated
  /// thread on the non-reuse tier). Called by the scheduler after resume.
  void ReapProcess(Process* p);
  /// Spawns the compute pool on the first pooled Offload.
  void EnsureOffloadPool();
  /// Pool-thread main loop: pop job, run closure, release its semaphore.
  void OffloadWorkerMain();
  /// Teardown: discard queued jobs, wait out in-flight closures, join the
  /// pool. Must complete before any process stack (which closures may
  /// reference) is unwound or freed.
  void DrainOffloadPool();
#if FSD_SIM_HAS_FIBERS
  /// Allocates the fiber stack and context for `p`'s first resume.
  void StartFiber(Process* p);
  /// Fiber entry point; the Process* is split across the two makecontext
  /// int arguments (the portable ucontext pointer-passing idiom).
  static void FiberTrampoline(unsigned int hi, unsigned int lo);
#endif

  SimTuning tuning_;
  /// Fiber tier actually in effect (tuning_.use_fibers gated on build
  /// support); when false, the thread tiers below carry the handoffs.
  bool fibers_ = false;
#if FSD_SIM_HAS_FIBERS
  ucontext_t sched_context_;  // where fibers yield back to
#endif
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_pid_ = 1;
  int live_processes_ = 0;
  uint64_t events_dispatched_ = 0;
  std::vector<Event> events_;  // binary heap via std::push_heap/pop_heap
  /// Pid-indexed slots (pid - 1). Finished processes are released back to
  /// the null slot so a long trace replay holds only live ones.
  std::vector<std::unique_ptr<Process>> processes_;
  /// All worker threads ever created (joined at teardown); idle_workers_
  /// is the reuse stack of the fast path.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> idle_workers_;
  /// Pooled callback storage: `Event::target` indexes callback_slots_;
  /// dispatched/freed slots recycle through free_slots_.
  std::vector<std::function<void()>> callback_slots_;
  std::vector<uint32_t> free_slots_;
  Process* running_ = nullptr;
  bool in_run_ = false;
  std::atomic<bool> tearing_down_{false};
  /// Compute-offload pool (null until the first pooled Offload) and the
  /// scheduler-thread-owned virtual counters.
  std::unique_ptr<OffloadPool> offload_pool_;
  uint64_t offload_calls_ = 0;
  double offload_virtual_s_ = 0.0;
};

/// Computes the virtual-time makespan of running `latencies` on `lanes`
/// parallel lanes (greedy list scheduling in submission order). Models a
/// worker's IPC thread pool without spawning simulation processes.
SimTime ParallelMakespan(const std::vector<SimTime>& latencies, int lanes);

}  // namespace fsd::sim

#endif  // FSD_SIM_SIMULATION_H_
