// Process-oriented discrete-event simulation (DES) kernel.
//
// The kernel drives "processes" — user functions that run on dedicated OS
// threads but execute strictly one at a time under the scheduler's control
// (SimPy-style cooperative simulation). Virtual time only advances between
// events; a process blocks by calling Hold()/Wait*() which hands control
// back to the scheduler. Because exactly one process is ever runnable and
// the event queue orders by (time, sequence), simulations are fully
// deterministic and race-free regardless of host scheduling.
#ifndef FSD_SIM_SIMULATION_H_
#define FSD_SIM_SIMULATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"

namespace fsd::sim {

class Simulation;

/// Virtual time in seconds.
using SimTime = double;

/// A waitable, one-shot signal processes can block on (with timeout).
/// Signals are created and consumed entirely inside the simulation; they are
/// the building block for queue wakeups, barriers and async completions.
class SimSignal {
 public:
  explicit SimSignal(Simulation* sim) : sim_(sim) {}

  /// Fires the signal, waking all current and future waiters immediately.
  void Fire();
  bool fired() const { return fired_; }

 private:
  friend class Simulation;
  Simulation* sim_;
  bool fired_ = false;
  std::vector<uint64_t> waiting_pids_;
};

/// Handle to a spawned process; join-able from other processes.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  explicit ProcessHandle(std::shared_ptr<SimSignal> done)
      : done_(std::move(done)) {}
  const std::shared_ptr<SimSignal>& done_signal() const { return done_; }

 private:
  std::shared_ptr<SimSignal> done_;
};

/// The DES kernel. Not thread-safe from outside: construct, AddProcess, Run.
class Simulation {
 public:
  Simulation() = default;
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Registers a root process to start at time `start`.
  /// Returns a handle whose done-signal fires when the process returns.
  ProcessHandle AddProcess(std::string name, std::function<void()> body,
                           SimTime start = 0.0);

  /// Runs until no events remain or `until` (if >= 0) is reached.
  void Run(SimTime until = -1.0);

  /// Current virtual time. Callable from within processes.
  SimTime Now() const { return now_; }

  /// ---- Process-context API (must be called from inside a process) ----

  /// Advances this process's virtual time by `dt` seconds.
  void Hold(SimTime dt);

  /// Blocks until `signal` fires, or until `timeout` elapses (timeout < 0
  /// waits forever). Returns true if the signal fired.
  bool WaitSignal(SimSignal* signal, SimTime timeout = -1.0);

  /// Spawns a child process starting immediately; returns a join handle.
  ProcessHandle Spawn(std::string name, std::function<void()> body);

  /// Blocks until the given process has finished.
  void Join(const ProcessHandle& handle);

  /// Creates a signal owned by the caller.
  std::shared_ptr<SimSignal> MakeSignal() {
    return std::make_shared<SimSignal>(this);
  }

  /// Schedules `fn` to run inside the scheduler at now+delay (no process
  /// context; used for service-side events like message delivery).
  void ScheduleCallback(SimTime delay, std::function<void()> fn);

  /// Name of the currently running process (for logs/metrics).
  const std::string& CurrentProcessName() const;

  /// Number of processes that have not yet finished.
  int live_processes() const { return live_processes_; }

  /// True while the destructor unwinds still-blocked processes. Kernel
  /// entry points become inert no-ops in this window so that destructors
  /// running on killed-process stacks (which may legitimately call Hold,
  /// fire signals or schedule callbacks) can never deadlock, crash on a
  /// missing scheduler, or race on kernel state from concurrently
  /// unwinding threads.
  bool tearing_down() const {
    return tearing_down_.load(std::memory_order_acquire);
  }

  /// Total events dispatched (diagnostic).
  uint64_t events_dispatched() const { return events_dispatched_; }

 private:
  friend class SimSignal;

  struct Process {
    uint64_t pid = 0;
    std::string name;
    std::function<void()> body;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool runnable = false;        // scheduler -> process handoff flag
    bool yielded = true;          // process -> scheduler handoff flag
    bool finished = false;
    bool killed = false;          // set at teardown to unwind the stack
    bool wait_satisfied = false;  // signal-wait outcome
    uint64_t wait_epoch = 0;      // guards against stale timeout events
    std::shared_ptr<SimSignal> done;
  };

  struct Event {
    SimTime time = 0.0;
    uint64_t seq = 0;
    uint64_t pid = 0;  // process wake target; unused for callbacks
    bool is_callback = false;
    std::function<void()> callback;
    bool is_timeout = false;  // signal-timeout wake (epoch-guarded)
    uint64_t epoch = 0;
  };

  /// Max-heap comparator yielding earliest (time, seq) at the heap root.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Process* FindProcess(uint64_t pid) const;
  void ScheduleWake(Process* p, SimTime delay, bool is_timeout, uint64_t epoch);
  void ResumeProcess(Process* p);
  void YieldToScheduler(Process* p);
  void WakeNow(uint64_t pid);
  void FinishProcess(Process* p);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_pid_ = 1;
  int live_processes_ = 0;
  uint64_t events_dispatched_ = 0;
  std::vector<Event> events_;  // binary heap via std::push_heap/pop_heap
  std::vector<std::unique_ptr<Process>> processes_;
  Process* running_ = nullptr;
  bool in_run_ = false;
  std::atomic<bool> tearing_down_{false};
};

/// Computes the virtual-time makespan of running `latencies` on `lanes`
/// parallel lanes (greedy list scheduling in submission order). Models a
/// worker's IPC thread pool without spawning simulation processes.
SimTime ParallelMakespan(const std::vector<SimTime>& latencies, int lanes);

}  // namespace fsd::sim

#endif  // FSD_SIM_SIMULATION_H_
