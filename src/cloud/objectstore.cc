#include "cloud/objectstore.h"

namespace fsd::cloud {

Status ObjectStore::CreateBucket(const std::string& name) {
  if (buckets_.contains(name)) {
    return Status::AlreadyExists("bucket exists: " + name);
  }
  Bucket bucket;
  bucket.put_limiter =
      std::make_unique<RateLimiter>(latency_->object_put_rps_per_bucket);
  bucket.get_limiter =
      std::make_unique<RateLimiter>(latency_->object_get_rps_per_bucket);
  bucket.list_limiter =
      std::make_unique<RateLimiter>(latency_->object_list_rps_per_bucket);
  buckets_.emplace(name, std::move(bucket));
  return Status::OK();
}

bool ObjectStore::BucketExists(const std::string& name) const {
  return buckets_.contains(name);
}

ObjectStore::Bucket* ObjectStore::Find(const std::string& name) {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? nullptr : &it->second;
}

const ObjectStore::Bucket* ObjectStore::Find(const std::string& name) const {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? nullptr : &it->second;
}

ObjectStore::PutOutcome ObjectStore::Put(const std::string& bucket,
                                         const std::string& key, Bytes body) {
  PutOutcome outcome;
  Bucket* b = Find(bucket);
  if (b == nullptr) {
    outcome.status = Status::NotFound("no such bucket: " + bucket);
    return outcome;
  }
  billing_->Record(BillingDimension::kObjectPut, 1);
  const double queueing = b->put_limiter->AdmissionDelay(sim_->Now());
  const double latency =
      queueing + latency_->object_put.Sample(&rng_, body.size());
  outcome.latency = latency;
  const double visible_at = sim_->Now() + latency;
  // Last-writer-wins at visibility time, matching S3 semantics closely
  // enough for the overwrite-free workloads FSD generates.
  b->objects[key] = StoredObject{std::move(body), visible_at};
  outcome.status = Status::OK();
  return outcome;
}

ObjectStore::GetOutcome ObjectStore::Get(const std::string& bucket,
                                         const std::string& key) {
  GetOutcome outcome;
  Bucket* b = Find(bucket);
  if (b == nullptr) {
    outcome.status = Status::NotFound("no such bucket: " + bucket);
    return outcome;
  }
  billing_->Record(BillingDimension::kObjectGet, 1);
  auto it = b->objects.find(key);
  if (it == b->objects.end() || it->second.visible_at > sim_->Now()) {
    // A failed GET still consumed a request; bill then fail.
    outcome.latency = latency_->object_get.Sample(&rng_, 0);
    outcome.status = Status::NotFound("no such key: " + key);
    return outcome;
  }
  const double queueing = b->get_limiter->AdmissionDelay(sim_->Now());
  outcome.latency =
      queueing + latency_->object_get.Sample(&rng_, it->second.body.size());
  outcome.body = it->second.body;
  outcome.status = Status::OK();
  return outcome;
}

Result<Bytes> ObjectStore::GetBlocking(const std::string& bucket,
                                       const std::string& key) {
  GetOutcome outcome = Get(bucket, key);
  sim_->Hold(outcome.latency);
  if (!outcome.status.ok()) return outcome.status;
  return std::move(outcome.body);
}

Result<std::vector<ObjectMeta>> ObjectStore::List(const std::string& bucket,
                                                  const std::string& prefix) {
  Bucket* b = Find(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  std::vector<ObjectMeta> out;
  const double now = sim_->Now();
  for (auto it = b->objects.lower_bound(prefix); it != b->objects.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.visible_at > now) continue;
    out.push_back({it->first, it->second.body.size()});
  }
  const uint64_t pages =
      std::max<uint64_t>(1, (out.size() + kListPageSize - 1) / kListPageSize);
  billing_->Record(BillingDimension::kObjectList, static_cast<double>(pages));
  double latency = 0.0;
  for (uint64_t p = 0; p < pages; ++p) {
    latency += b->list_limiter->AdmissionDelay(sim_->Now()) +
               latency_->object_list.Sample(&rng_);
  }
  sim_->Hold(latency);
  return out;
}

Status ObjectStore::Delete(const std::string& bucket, const std::string& key) {
  Bucket* b = Find(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  b->objects.erase(key);
  return Status::OK();
}

uint64_t ObjectStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, bucket] : buckets_) {
    for (const auto& [key, object] : bucket.objects) {
      total += object.body.size();
    }
  }
  return total;
}

}  // namespace fsd::cloud
