// PubSubService: SNS-like publish/subscribe with queue fan-out.
//
// Reproduces the properties FSD-Inf-Queue exploits (paper §III-A):
//  - batched publishes: up to 10 messages and 256 KiB per call
//  - attribute-based filter policies evaluated service-side, so each
//    subscribed queue receives only its own worker's messages
//  - publishes billed in 64 KiB increments; pub-sub -> queue transfer
//    billed per byte
//  - per-topic request-rate caps, motivating the paper's topic sharding
//
// Publish calls are NON-blocking: they return the sampled API latency and
// schedule deliveries in the future, so callers can model multi-threaded
// publishing with sim::ParallelMakespan and overlap IPC with compute.
#ifndef FSD_CLOUD_PUBSUB_H_
#define FSD_CLOUD_PUBSUB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "cloud/queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

/// Per-publish quota (AWS SNS PublishBatch limits).
constexpr int kMaxMessagesPerPublish = 10;
constexpr uint64_t kMaxPublishBytes = 256 * 1024;

/// Attribute equality filter: every listed attribute must be present on the
/// message with one of the allowed values (AWS SNS filter-policy subset).
struct FilterPolicy {
  std::map<std::string, std::vector<std::string>> equals;

  bool Matches(const std::map<std::string, std::string>& attributes) const;
};

class PubSubService {
 public:
  PubSubService(sim::Simulation* sim, BillingLedger* billing,
                const LatencyConfig* latency, QueueService* queues, Rng rng)
      : sim_(sim),
        billing_(billing),
        latency_(latency),
        queues_(queues),
        rng_(rng) {}

  Status CreateTopic(const std::string& name);
  bool TopicExists(const std::string& name) const;

  /// Routes matching messages published on `topic` into `queue_name`.
  Status Subscribe(const std::string& topic, const std::string& queue_name,
                   FilterPolicy policy);

  struct PublishOutcome {
    Status status;
    /// API-call latency the caller should account (publish round trip,
    /// including any rate-limit queueing delay).
    double latency = 0.0;
    /// 64 KiB chunks billed for this publish.
    uint64_t billed_chunks = 0;
  };

  /// Publishes up to 10 messages totalling <= 256 KiB. Non-blocking; the
  /// caller decides how to account `latency` (serial hold or thread-pool
  /// makespan). Deliveries reach subscribed queues at
  /// now + latency + fanout delay.
  PublishOutcome PublishBatch(const std::string& topic,
                              std::vector<QueueMessage> messages);

 private:
  struct Subscription {
    std::string queue_name;
    FilterPolicy policy;
  };
  struct Topic {
    std::vector<Subscription> subscriptions;
    std::unique_ptr<RateLimiter> limiter;
  };

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  QueueService* queues_;
  Rng rng_;
  std::map<std::string, Topic> topics_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_PUBSUB_H_
