#include "cloud/billing.h"

#include "common/strings.h"

namespace fsd::cloud {

std::string_view BillingDimensionName(BillingDimension dim) {
  switch (dim) {
    case BillingDimension::kFaasInvocation:
      return "faas.invocations";
    case BillingDimension::kFaasRuntimeMbSec:
      return "faas.runtime_mb_sec";
    case BillingDimension::kPubSubPublishChunk:
      return "pubsub.publish_chunks";
    case BillingDimension::kPubSubDeliveryByte:
      return "pubsub.delivery_bytes";
    case BillingDimension::kQueueApiCall:
      return "queue.api_calls";
    case BillingDimension::kObjectPut:
      return "object.put";
    case BillingDimension::kObjectGet:
      return "object.get";
    case BillingDimension::kObjectList:
      return "object.list";
    case BillingDimension::kKvRequest:
      return "kv.requests";
    case BillingDimension::kKvProcessedByte:
      return "kv.processed_bytes";
    case BillingDimension::kKvNodeSecond:
      return "kv.node_seconds";
    case BillingDimension::kP2pConnection:
      return "p2p.connections";
    case BillingDimension::kP2pByte:
      return "p2p.bytes";
    case BillingDimension::kVmSecond:
      return "vm.seconds";
    case BillingDimension::kDimensionCount:
      break;
  }
  return "unknown";
}

double BillingLedger::UnitPrice(BillingDimension dim) const {
  switch (dim) {
    case BillingDimension::kFaasInvocation:
      return pricing_.faas_per_invocation;
    case BillingDimension::kFaasRuntimeMbSec:
      return pricing_.faas_per_mb_second;
    case BillingDimension::kPubSubPublishChunk:
      return pricing_.pubsub_per_publish_chunk;
    case BillingDimension::kPubSubDeliveryByte:
      return pricing_.pubsub_per_byte;
    case BillingDimension::kQueueApiCall:
      return pricing_.queue_per_api_call;
    case BillingDimension::kObjectPut:
      return pricing_.object_per_put;
    case BillingDimension::kObjectGet:
      return pricing_.object_per_get;
    case BillingDimension::kObjectList:
      return pricing_.object_per_list;
    case BillingDimension::kKvRequest:
      return pricing_.kv_per_request;
    case BillingDimension::kKvProcessedByte:
      return pricing_.kv_per_processed_byte;
    case BillingDimension::kKvNodeSecond:
      return 0.0;  // priced per hour at record time
    case BillingDimension::kP2pConnection:
      return pricing_.p2p_per_connection;
    case BillingDimension::kP2pByte:
      return pricing_.p2p_per_byte;
    case BillingDimension::kVmSecond:
      return 0.0;  // priced per instance type at record time
    case BillingDimension::kDimensionCount:
      break;
  }
  return 0.0;
}

double BillingLedger::TotalCost() const {
  double total = 0.0;
  for (const BillingLine& line : lines_) total += line.cost;
  return total;
}

double BillingLedger::FaasCost() const {
  return line(BillingDimension::kFaasInvocation).cost +
         line(BillingDimension::kFaasRuntimeMbSec).cost;
}

double BillingLedger::CommunicationCost() const {
  return line(BillingDimension::kPubSubPublishChunk).cost +
         line(BillingDimension::kPubSubDeliveryByte).cost +
         line(BillingDimension::kQueueApiCall).cost +
         line(BillingDimension::kObjectPut).cost +
         line(BillingDimension::kObjectGet).cost +
         line(BillingDimension::kObjectList).cost +
         line(BillingDimension::kKvRequest).cost +
         line(BillingDimension::kKvProcessedByte).cost +
         line(BillingDimension::kKvNodeSecond).cost +
         line(BillingDimension::kP2pConnection).cost +
         line(BillingDimension::kP2pByte).cost;
}

std::string BillingLedger::ToString() const {
  std::string out;
  for (int i = 0; i < static_cast<int>(BillingDimension::kDimensionCount);
       ++i) {
    const BillingLine& line = lines_[i];
    if (line.events == 0) continue;
    out += StrFormat("  %-24s qty=%.0f cost=%s\n",
                     std::string(BillingDimensionName(
                                     static_cast<BillingDimension>(i)))
                         .c_str(),
                     line.quantity, HumanDollars(line.cost).c_str());
  }
  out += StrFormat("  %-24s cost=%s\n", "TOTAL",
                   HumanDollars(TotalCost()).c_str());
  return out;
}

void BillingLedger::Reset() {
  for (BillingLine& line : lines_) line = BillingLine{};
}

}  // namespace fsd::cloud
