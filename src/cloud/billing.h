// Billing ledger: records every billable event in the simulated cloud.
//
// The ledger is the simulation's equivalent of the AWS Cost & Usage report
// the paper uses in §VI-F to validate its cost model: experiments read
// "actual" costs from here and compare them against the analytical model.
#ifndef FSD_CLOUD_BILLING_H_
#define FSD_CLOUD_BILLING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/pricing.h"

namespace fsd::cloud {

/// Billable usage dimensions (the quantities in cost-model Eqs. 4-7).
enum class BillingDimension : int {
  kFaasInvocation = 0,   ///< P (per invocation)
  kFaasRuntimeMbSec,     ///< P * T-bar * M (MB-seconds)
  kPubSubPublishChunk,   ///< S (64 KiB billed publish chunks)
  kPubSubDeliveryByte,   ///< Z (bytes transferred pub-sub -> queue)
  kQueueApiCall,         ///< Q (queue API requests)
  kObjectPut,            ///< V
  kObjectGet,            ///< R
  kObjectList,           ///< L
  kKvRequest,            ///< K (KV push/pop/set/get requests)
  kKvProcessedByte,      ///< B (payload bytes processed by the cache)
  kKvNodeSecond,         ///< cache-node seconds (priced per hour)
  kP2pConnection,        ///< established NAT-punched links (per pair)
  kP2pByte,              ///< bytes shipped over punched links
  kVmSecond,             ///< VM runtime seconds (priced per type)
  kDimensionCount,
};

std::string_view BillingDimensionName(BillingDimension dim);

/// Aggregated usage + cost for one dimension.
struct BillingLine {
  uint64_t events = 0;    ///< number of Record() calls
  double quantity = 0.0;  ///< dimension-specific quantity (requests, bytes..)
  double cost = 0.0;      ///< USD
};

/// Append-only cost aggregation; one ledger per experiment/run.
class BillingLedger {
 public:
  explicit BillingLedger(PricingConfig pricing = {})
      : pricing_(std::move(pricing)) {}

  const PricingConfig& pricing() const { return pricing_; }

  /// Records `quantity` units on `dim` at the dimension's catalogue price.
  void Record(BillingDimension dim, double quantity) {
    RecordCost(dim, quantity, quantity * UnitPrice(dim));
  }

  /// Records usage with an explicit cost (e.g. VM seconds priced per type).
  void RecordCost(BillingDimension dim, double quantity, double cost) {
    BillingLine& line = lines_[static_cast<int>(dim)];
    ++line.events;
    line.quantity += quantity;
    line.cost += cost;
  }

  /// Catalogue unit price for a dimension (0 for per-type dimensions).
  double UnitPrice(BillingDimension dim) const;

  const BillingLine& line(BillingDimension dim) const {
    return lines_[static_cast<int>(dim)];
  }

  /// Total cost across all dimensions.
  double TotalCost() const;

  /// FaaS-only cost (C_lambda in the paper).
  double FaasCost() const;

  /// Communication-only cost (C_SNS + C_SQS or C_S3).
  double CommunicationCost() const;

  /// Multi-line human-readable breakdown.
  std::string ToString() const;

  /// Zeroes all lines (reuse between runs).
  void Reset();

 private:
  PricingConfig pricing_;
  BillingLine lines_[static_cast<int>(BillingDimension::kDimensionCount)];
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_BILLING_H_
