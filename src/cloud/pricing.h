// Pricing catalogue for the simulated cloud, mirroring the AWS price points
// the paper's cost model (Section IV) is built on. All prices are data, not
// code, so experiments can re-run under hypothetical pricing.
#ifndef FSD_CLOUD_PRICING_H_
#define FSD_CLOUD_PRICING_H_

#include <cstdint>
#include <map>
#include <string>

namespace fsd::cloud {

/// Prices in USD; names follow the paper's cost-model symbols where one
/// exists (Eq. 4-7).
struct PricingConfig {
  // --- FaaS (AWS Lambda, Eq. 4) ---
  /// C_lambda(Inv): static cost per invocation ($0.20 per 1M requests).
  double faas_per_invocation = 0.20 / 1e6;
  /// C_lambda(Run): cost per MB-second of runtime ($0.0000166667 per GB-s).
  double faas_per_mb_second = 0.0000166667 / 1024.0;

  // --- Pub-sub (AWS SNS, Eq. 5) ---
  /// C_SNS(Pub): cost per billed 64 KiB publish chunk ($0.50 per 1M).
  double pubsub_per_publish_chunk = 0.50 / 1e6;
  /// C_SNS(Byte): cost per byte transferred from pub-sub to queues.
  /// ($0.09/GB cross-service data transfer; the dominant per-byte term.)
  double pubsub_per_byte = 0.09 / (1024.0 * 1024.0 * 1024.0);
  /// Billing increment for publish payloads (64 KiB).
  uint64_t pubsub_billing_increment_bytes = 64 * 1024;

  // --- Queues (AWS SQS, Eq. 6) ---
  /// C_SQS(API): cost per API request ($0.40 per 1M requests).
  double queue_per_api_call = 0.40 / 1e6;

  // --- Object storage (AWS S3, Eq. 7) ---
  /// C_S3(Put): cost per PUT request ($0.005 per 1K).
  double object_per_put = 0.005 / 1e3;
  /// C_S3(Get): cost per GET request ($0.0004 per 1K).
  double object_per_get = 0.0004 / 1e3;
  /// C_S3(List): cost per LIST request ($0.005 per 1K).
  double object_per_list = 0.005 / 1e3;

  // --- In-memory KV (ElastiCache/Redis-style serverless cache) ---
  /// C_KV(Req): cost per KV API request (push/pop/set/get).
  double kv_per_request = 0.20 / 1e6;
  /// C_KV(Byte): cost per payload byte processed by the cache (ECPU-style
  /// per-KB metering makes throughput the expensive dimension).
  double kv_per_processed_byte = 0.34 / (1024.0 * 1024.0 * 1024.0);
  /// C_KV(Node): standing $/hour for a provisioned namespace (serverless
  /// cache floor) — the term request-priced object storage never pays.
  double kv_node_hourly = 0.09;

  // --- Direct P2P links (FSD-Inf-Direct) ---
  /// C_P2P(Conn): per established NAT-punched connection — the brokered
  /// STUN/TURN introduction each ordered pair pays once (priced like a
  /// TURN allocation minute). Quadratic in P, which is what makes the
  /// direct channel a latency play rather than a cost play at scale.
  double p2p_per_connection = 0.05 / 1e3;
  /// C_P2P(Byte): per byte shipped over punched links (inter-AZ transfer
  /// class — cheap relative to pub-sub's cross-service rate).
  double p2p_per_byte = 0.02 / (1024.0 * 1024.0 * 1024.0);

  // --- VMs (AWS EC2 on-demand, us-east-1) ---
  /// $/hour by instance type; used by the server-based baselines.
  std::map<std::string, double> vm_hourly = {
      {"c5.2xlarge", 0.34},
      {"c5.9xlarge", 1.53},
      {"c5.12xlarge", 2.04},
  };

  /// EBS gp3 storage $/GB-month (always-on baselines keep models on EBS).
  double ebs_gb_month = 0.08;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_PRICING_H_
