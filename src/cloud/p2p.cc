#include "cloud/p2p.h"

namespace fsd::cloud {
namespace {

/// splitmix64 finalizer: spreads the combined pair identity into uniform
/// bits so punch outcomes and bandwidth factors look independent.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) for an unordered pair within a session.
/// Independent of call order, so which pairs punch (and each pair's link
/// quality) is a property of the configuration, not of scheduling. Keyed
/// by the session's creation-index salt, never its name: scoped names
/// embed a process-global run counter, and hashing them would hand
/// otherwise-identical runs different punch patterns.
double PairUniform(uint64_t session_salt, int32_t src, int32_t dst,
                   uint64_t salt) {
  uint64_t h = Mix64(session_salt + 0x632d70756e6368ull);
  h = Mix64(h ^ salt);
  h = Mix64(h ^ ((static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
                 static_cast<uint32_t>(dst)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Canonical key for the one physical link a pair shares. A NAT hole punch
/// is mutual — the handshake establishes src<->dst in both directions — so
/// link state, the punch verdict and the connection charge must be keyed
/// by the unordered pair, never once per asking side.
std::pair<int32_t, int32_t> LinkKey(int32_t a, int32_t b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Status P2pFabric::CreateSession(const std::string& name) {
  if (sessions_.contains(name)) {
    return Status::AlreadyExists("p2p session exists: " + name);
  }
  Session session;
  session.salt = next_session_salt_++;
  sessions_.emplace(name, std::move(session));
  return Status::OK();
}

bool P2pFabric::SessionExists(const std::string& name) const {
  return sessions_.contains(name);
}

Status P2pFabric::DeleteSession(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no such p2p session: " + name);
  }
  // Wake any blocked poppers; they observe NotFound on re-entry.
  for (auto& [key, inbox] : it->second.inboxes) {
    if (inbox.arrival_signal != nullptr) inbox.arrival_signal->Fire();
  }
  sessions_.erase(it);
  return Status::OK();
}

P2pFabric::Session* P2pFabric::Find(const std::string& name) {
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : &it->second;
}

const P2pFabric::Session* P2pFabric::Find(const std::string& name) const {
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : &it->second;
}

P2pFabric::ConnectOutcome P2pFabric::Connect(const std::string& session,
                                             int32_t src, int32_t dst) {
  ConnectOutcome outcome;
  Session* s = Find(session);
  if (s == nullptr) {
    outcome.status = Status::NotFound("no such p2p session: " + session);
    return outcome;
  }
  const std::pair<int32_t, int32_t> pair = LinkKey(src, dst);
  auto [it, fresh] = s->links.try_emplace(pair);
  Link& link = it->second;
  if (fresh) {
    link.punched =
        PairUniform(s->salt, pair.first, pair.second, 0x70756e6368ull) >=
        latency_->p2p_punch_failure_rate;
    if (link.punched) {
      const double spread = latency_->p2p_bandwidth_spread;
      const double factor =
          1.0 + spread * (PairUniform(s->salt, pair.first, pair.second,
                                      0x62616e64ull) -
                          0.5);
      link.bandwidth_bytes_per_s =
          latency_->p2p_bandwidth_bytes_per_s * factor;
      link.ready_at = sim_->Now() + latency_->p2p_setup.Sample(&rng_);
      // The established link is the billed resource: one connection
      // charge at punch time, then bytes only. Failed punches bill
      // nothing here — their penalty is every message paying the managed
      // relay's request pricing and latency instead.
      billing_->Record(BillingDimension::kP2pConnection, 1);
    }
  }
  outcome.status = Status::OK();
  outcome.punched = link.punched;
  outcome.fresh = fresh;
  outcome.setup_s =
      link.ready_at > sim_->Now() ? link.ready_at - sim_->Now() : 0.0;
  return outcome;
}

P2pFabric::SendOutcome P2pFabric::Send(const std::string& session,
                                       int32_t src, int32_t dst,
                                       const std::string& key, Bytes value) {
  SendOutcome outcome;
  Session* s = Find(session);
  if (s == nullptr) {
    outcome.status = Status::NotFound("no such p2p session: " + session);
    return outcome;
  }
  auto it = s->links.find(LinkKey(src, dst));
  if (it == s->links.end() || !it->second.punched) {
    outcome.status = Status::FailedPrecondition(
        "no punched p2p link for pair; use the relay");
    return outcome;
  }
  const Link& link = it->second;
  billing_->Record(BillingDimension::kP2pByte,
                   static_cast<double>(value.size()));
  // Sends dispatched while the handshake is still in flight queue behind
  // it; afterwards the message pays the link's base latency plus transfer
  // at the pair's punched bandwidth.
  const double handshake_wait =
      link.ready_at > sim_->Now() ? link.ready_at - sim_->Now() : 0.0;
  const double transfer =
      static_cast<double>(value.size()) / link.bandwidth_bytes_per_s;
  outcome.latency =
      handshake_wait + latency_->p2p_send.Sample(&rng_) + transfer;

  Inbox& inbox = s->inboxes[key];
  inbox.values.push_back(
      DeliveredValue{std::move(value), sim_->Now() + outcome.latency});
  // Wake long-pollers when the value becomes visible, then re-arm. As in
  // KvStore::Push, the signal is popper-allocated, so an unobserved
  // delivery skips the fire/re-arm allocation cycle entirely.
  std::string session_copy = session;
  std::string key_copy = key;
  sim_->ScheduleCallback(
      outcome.latency, [this, session_copy, key_copy]() {
        Session* target = Find(session_copy);
        if (target == nullptr) return;  // session torn down in flight
        auto inbox_it = target->inboxes.find(key_copy);
        if (inbox_it == target->inboxes.end()) return;
        std::shared_ptr<sim::SimSignal>& signal =
            inbox_it->second.arrival_signal;
        if (signal == nullptr || !signal->has_waiters()) return;
        signal->Fire();
        signal = sim_->MakeSignal();
      });
  outcome.status = Status::OK();
  return outcome;
}

Result<std::vector<Bytes>> P2pFabric::BlockingPopAll(
    const std::string& session, const std::string& key, int max_values,
    double wait_s) {
  if (max_values < 1 || max_values > kMaxValuesPerInboxPop) {
    return Status::InvalidArgument("max_values must be in [1, 64]");
  }
  Session* s = Find(session);
  if (s == nullptr) {
    return Status::NotFound("no such p2p session: " + session);
  }

  auto gather = [&](Session* space) {
    std::vector<Bytes> out;
    auto it = space->inboxes.find(key);
    if (it == space->inboxes.end()) return out;
    const double now = sim_->Now();
    std::deque<DeliveredValue>& values = it->second.values;
    while (!values.empty() && static_cast<int>(out.size()) < max_values &&
           values.front().visible_at <= now) {
      out.push_back(std::move(values.front().body));
      values.pop_front();
    }
    // Erase fully drained, unwatched inboxes — phase-scoped keys would
    // otherwise accumulate for the life of the session (see the matching
    // note in KvStore::BlockingPopAll for why this is safe).
    if (values.empty() && (it->second.arrival_signal == nullptr ||
                           !it->second.arrival_signal->has_waiters())) {
      space->inboxes.erase(it);
    }
    return out;
  };

  std::vector<Bytes> got = gather(s);
  const double deadline = sim_->Now() + wait_s;
  while (got.empty()) {
    const double remaining = deadline - sim_->Now();
    if (remaining <= 0.0) break;
    Inbox& inbox = s->inboxes[key];
    if (inbox.arrival_signal == nullptr) {
      inbox.arrival_signal = sim_->MakeSignal();
    }
    std::shared_ptr<sim::SimSignal> signal = inbox.arrival_signal;
    if (!sim_->WaitSignal(signal.get(), remaining)) break;
    // Re-resolve: the session may have been torn down while we slept.
    s = Find(session);
    if (s == nullptr) {
      return Status::NotFound("p2p session deleted: " + session);
    }
    got = gather(s);
  }
  return got;
}

Result<size_t> P2pFabric::InboxDepth(const std::string& session,
                                     const std::string& key) const {
  const Session* s = Find(session);
  if (s == nullptr) {
    return Status::NotFound("no such p2p session: " + session);
  }
  auto it = s->inboxes.find(key);
  if (it == s->inboxes.end()) return static_cast<size_t>(0);
  size_t visible = 0;
  for (const DeliveredValue& v : it->second.values) {
    if (v.visible_at <= sim_->Now()) ++visible;
  }
  return visible;
}

}  // namespace fsd::cloud
