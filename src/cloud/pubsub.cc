#include "cloud/pubsub.h"

#include <algorithm>

namespace fsd::cloud {

bool FilterPolicy::Matches(
    const std::map<std::string, std::string>& attributes) const {
  for (const auto& [key, allowed] : equals) {
    auto it = attributes.find(key);
    if (it == attributes.end()) return false;
    if (std::find(allowed.begin(), allowed.end(), it->second) ==
        allowed.end()) {
      return false;
    }
  }
  return true;
}

Status PubSubService::CreateTopic(const std::string& name) {
  if (topics_.contains(name)) {
    return Status::AlreadyExists("topic exists: " + name);
  }
  Topic topic;
  topic.limiter = std::make_unique<RateLimiter>(latency_->pubsub_topic_rps);
  topics_.emplace(name, std::move(topic));
  return Status::OK();
}

bool PubSubService::TopicExists(const std::string& name) const {
  return topics_.contains(name);
}

Status PubSubService::Subscribe(const std::string& topic,
                                const std::string& queue_name,
                                FilterPolicy policy) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no such topic: " + topic);
  if (!queues_->QueueExists(queue_name)) {
    return Status::NotFound("no such queue: " + queue_name);
  }
  it->second.subscriptions.push_back({queue_name, std::move(policy)});
  return Status::OK();
}

PubSubService::PublishOutcome PubSubService::PublishBatch(
    const std::string& topic, std::vector<QueueMessage> messages) {
  PublishOutcome outcome;
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    outcome.status = Status::NotFound("no such topic: " + topic);
    return outcome;
  }
  if (messages.empty() ||
      messages.size() > static_cast<size_t>(kMaxMessagesPerPublish)) {
    outcome.status =
        Status::InvalidArgument("publish batch must contain 1..10 messages");
    return outcome;
  }
  uint64_t total_bytes = 0;
  for (const QueueMessage& m : messages) total_bytes += m.SizeBytes();
  if (total_bytes > kMaxPublishBytes) {
    outcome.status = Status::ResourceExhausted(
        "publish batch exceeds 256 KiB payload limit");
    return outcome;
  }

  // Billing: publishes are billed in 64 KiB increments of the total batch
  // payload — a full 256 KiB publish (spread across up to 10 messages) is
  // billed as 4 requests (paper §IV-A1).
  const uint64_t increment =
      billing_->pricing().pubsub_billing_increment_bytes;
  const uint64_t chunks =
      std::max<uint64_t>(1, (total_bytes + increment - 1) / increment);
  billing_->Record(BillingDimension::kPubSubPublishChunk,
                   static_cast<double>(chunks));
  outcome.billed_chunks = chunks;

  Topic& t = it->second;
  const double queueing = t.limiter->AdmissionDelay(sim_->Now());
  const double api_latency =
      queueing + latency_->pubsub_publish.Sample(&rng_, total_bytes);
  outcome.latency = api_latency;

  // Service-side filtering + fan-out: deliveries are scheduled relative to
  // the publish completing, one fan-out hop per message per match.
  for (QueueMessage& m : messages) {
    for (const Subscription& sub : t.subscriptions) {
      if (!sub.policy.Matches(m.attributes)) continue;
      billing_->Record(BillingDimension::kPubSubDeliveryByte,
                       static_cast<double>(m.SizeBytes()));
      const double delivery_at =
          api_latency + latency_->pubsub_fanout.Sample(&rng_, m.SizeBytes());
      QueueMessage copy = m;
      std::string queue_name = sub.queue_name;
      sim_->ScheduleCallback(delivery_at, [this, queue_name,
                                           msg = std::move(copy)]() mutable {
        // Delivery failures (deleted queue) are dropped, as in SNS.
        queues_->Deliver(queue_name, std::move(msg)).ok();
      });
    }
  }
  outcome.status = Status::OK();
  return outcome;
}

}  // namespace fsd::cloud
