#include "cloud/kvstore.h"

#include <algorithm>
#include <functional>

namespace fsd::cloud {

Status KvStore::CreateNamespace(const std::string& name,
                                KvNamespaceOptions options) {
  if (namespaces_.contains(name)) {
    return Status::AlreadyExists("kv namespace exists: " + name);
  }
  FSD_CHECK_GE(options.num_shards, 1);
  Namespace ns;
  ns.options = options;
  for (int s = 0; s < options.num_shards; ++s) {
    ns.shard_limiters.push_back(
        std::make_unique<RateLimiter>(latency_->kv_ops_rps_per_shard));
  }
  namespaces_.emplace(name, std::move(ns));
  return Status::OK();
}

bool KvStore::NamespaceExists(const std::string& name) const {
  return namespaces_.contains(name);
}

Status KvStore::DeleteNamespace(const std::string& name) {
  auto it = namespaces_.find(name);
  if (it == namespaces_.end()) {
    return Status::NotFound("no such kv namespace: " + name);
  }
  // The namespace's node time is what a request-priced service never
  // charges: bill the active window (first use -> teardown) on the way
  // out so ledger deltas capture the standing cost of keeping a cache
  // around for the run. Pre-provisioned-but-idle time is free.
  const double seconds =
      it->second.first_use_at >= 0.0 ? sim_->Now() - it->second.first_use_at
                                     : 0.0;
  billing_->RecordCost(BillingDimension::kKvNodeSecond, seconds,
                       seconds * billing_->pricing().kv_node_hourly / 3600.0);
  // Wake any blocked poppers; they observe NotFound on re-entry.
  for (auto& [key, list] : it->second.lists) {
    if (list.arrival_signal != nullptr) list.arrival_signal->Fire();
  }
  namespaces_.erase(it);
  return Status::OK();
}

KvStore::Namespace* KvStore::Find(const std::string& name) {
  auto it = namespaces_.find(name);
  return it == namespaces_.end() ? nullptr : &it->second;
}

const KvStore::Namespace* KvStore::Find(const std::string& name) const {
  auto it = namespaces_.find(name);
  return it == namespaces_.end() ? nullptr : &it->second;
}

double KvStore::ShardDelay(Namespace* ns, const std::string& key) {
  const size_t shard =
      std::hash<std::string>{}(key) % ns->shard_limiters.size();
  return ns->shard_limiters[shard]->AdmissionDelay(sim_->Now());
}

void KvStore::BillRequest(Namespace* ns, uint64_t bytes) {
  if (ns->first_use_at < 0.0) ns->first_use_at = sim_->Now();
  billing_->Record(BillingDimension::kKvRequest, 1);
  if (bytes > 0) {
    billing_->Record(BillingDimension::kKvProcessedByte,
                     static_cast<double>(bytes));
  }
}

KvStore::PushOutcome KvStore::Push(const std::string& ns_name,
                                   const std::string& key, Bytes value) {
  PushOutcome outcome;
  Namespace* ns = Find(ns_name);
  if (ns == nullptr) {
    outcome.status = Status::NotFound("no such kv namespace: " + ns_name);
    return outcome;
  }
  BillRequest(ns, value.size());
  const double queueing = ShardDelay(ns, key);
  outcome.latency =
      queueing + latency_->kv_push.Sample(&rng_, value.size());

  ListEntry& list = ns->lists[key];
  StoredValue stored{std::move(value), sim_->Now() + outcome.latency};
  list.values.push_back(std::move(stored));
  // Wake long-pollers when the value becomes visible, then re-arm. The
  // signal itself is popper-allocated: a push with nobody polling leaves
  // it null, and a popper arriving after visibility finds the value in
  // gather() directly — so the unobserved case (the common one on the
  // hot path) skips the whole fire/re-arm allocation cycle.
  std::string ns_copy = ns_name;
  std::string key_copy = key;
  sim_->ScheduleCallback(outcome.latency, [this, ns_copy, key_copy]() {
    Namespace* target = Find(ns_copy);
    if (target == nullptr) return;  // namespace torn down in flight
    auto it = target->lists.find(key_copy);
    if (it == target->lists.end()) return;
    std::shared_ptr<sim::SimSignal>& signal = it->second.arrival_signal;
    if (signal == nullptr || !signal->has_waiters()) return;
    signal->Fire();
    signal = sim_->MakeSignal();
  });
  outcome.status = Status::OK();
  return outcome;
}

Result<std::vector<Bytes>> KvStore::BlockingPopAll(const std::string& ns_name,
                                                   const std::string& key,
                                                   int max_values,
                                                   double wait_s) {
  if (max_values < 1 || max_values > kMaxValuesPerPop) {
    return Status::InvalidArgument("max_values must be in [1, 64]");
  }
  Namespace* ns = Find(ns_name);
  if (ns == nullptr) {
    return Status::NotFound("no such kv namespace: " + ns_name);
  }
  const double queueing = ShardDelay(ns, key);
  if (queueing > 0.0) {
    sim_->Hold(queueing);
    // Holding yielded to the scheduler: the namespace may have been torn
    // down while this popper waited for shard admission.
    ns = Find(ns_name);
    if (ns == nullptr) {
      return Status::NotFound("kv namespace deleted: " + ns_name);
    }
  }

  auto gather = [&](Namespace* space) {
    std::vector<Bytes> out;
    auto it = space->lists.find(key);
    if (it == space->lists.end()) return out;
    const double now = sim_->Now();
    std::deque<StoredValue>& values = it->second.values;
    while (!values.empty() &&
           static_cast<int>(out.size()) < max_values &&
           values.front().visible_at <= now) {
      out.push_back(std::move(values.front().body));
      values.pop_front();
    }
    // A fully drained, unwatched list is dead weight: phases use fresh
    // keys, so without this the map grows with every phase of the run.
    // (Pending visibility callbacks keep values non-empty, and a waiter's
    // signal lives in the entry, so neither can be under an erased one.)
    if (values.empty() && (it->second.arrival_signal == nullptr ||
                           !it->second.arrival_signal->has_waiters())) {
      space->lists.erase(it);
    }
    return out;
  };

  std::vector<Bytes> got = gather(ns);
  const double deadline = sim_->Now() + wait_s;
  while (got.empty()) {
    const double remaining = deadline - sim_->Now();
    if (remaining <= 0.0) break;
    ListEntry& list = ns->lists[key];
    if (list.arrival_signal == nullptr) {
      list.arrival_signal = sim_->MakeSignal();
    }
    std::shared_ptr<sim::SimSignal> signal = list.arrival_signal;
    if (!sim_->WaitSignal(signal.get(), remaining)) break;
    // Re-resolve: the namespace may have been torn down while we slept.
    ns = Find(ns_name);
    if (ns == nullptr) {
      return Status::NotFound("kv namespace deleted: " + ns_name);
    }
    got = gather(ns);
  }

  uint64_t bytes = 0;
  for (const Bytes& v : got) bytes += v.size();
  BillRequest(ns, bytes);
  sim_->Hold(latency_->kv_pop.Sample(&rng_, bytes));
  return got;
}

Status KvStore::Set(const std::string& ns_name, const std::string& key,
                    Bytes value) {
  Namespace* ns = Find(ns_name);
  if (ns == nullptr) {
    return Status::NotFound("no such kv namespace: " + ns_name);
  }
  BillRequest(ns, value.size());
  const double latency = ShardDelay(ns, key) +
                         latency_->kv_push.Sample(&rng_, value.size());
  ns->kv[key] = StoredValue{std::move(value), sim_->Now() + latency};
  sim_->Hold(latency);
  return Status::OK();
}

Result<Bytes> KvStore::Get(const std::string& ns_name,
                           const std::string& key) {
  Namespace* ns = Find(ns_name);
  if (ns == nullptr) {
    return Status::NotFound("no such kv namespace: " + ns_name);
  }
  const double queueing = ShardDelay(ns, key);
  auto it = ns->kv.find(key);
  if (it == ns->kv.end() || it->second.visible_at > sim_->Now()) {
    BillRequest(ns, 0);
    sim_->Hold(queueing + latency_->kv_pop.Sample(&rng_));
    return Status::NotFound("no such kv key: " + key);
  }
  Bytes body = it->second.body;
  BillRequest(ns, body.size());
  sim_->Hold(queueing + latency_->kv_pop.Sample(&rng_, body.size()));
  return body;
}

Result<size_t> KvStore::ListLength(const std::string& ns_name,
                                   const std::string& key) const {
  const Namespace* ns = Find(ns_name);
  if (ns == nullptr) {
    return Status::NotFound("no such kv namespace: " + ns_name);
  }
  auto it = ns->lists.find(key);
  if (it == ns->lists.end()) return static_cast<size_t>(0);
  size_t visible = 0;
  for (const StoredValue& v : it->second.values) {
    if (v.visible_at <= sim_->Now()) ++visible;
  }
  return visible;
}

uint64_t KvStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, ns] : namespaces_) {
    for (const auto& [key, list] : ns.lists) {
      for (const StoredValue& v : list.values) total += v.body.size();
    }
    for (const auto& [key, v] : ns.kv) total += v.body.size();
  }
  return total;
}

}  // namespace fsd::cloud
