// VmService: EC2-like provisioned virtual machines.
//
// Supports the paper's server-based baselines (§VI-B): job-scoped VMs pay a
// boot delay and per-second billing for their lifetime; always-on servers
// are billed wall-clock for the provisioned window regardless of load.
#ifndef FSD_CLOUD_VM_H_
#define FSD_CLOUD_VM_H_

#include <cstdint>
#include <map>
#include <string>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

struct VmType {
  std::string name;
  double vcpus = 0;
  double memory_gb = 0;
};

/// Instance catalogue used by the paper (c5 compute-optimized family).
inline const std::map<std::string, VmType>& VmCatalogue() {
  static const std::map<std::string, VmType> catalogue = {
      {"c5.2xlarge", {"c5.2xlarge", 8, 16}},
      {"c5.9xlarge", {"c5.9xlarge", 36, 72}},
      {"c5.12xlarge", {"c5.12xlarge", 48, 96}},
  };
  return catalogue;
}

class VmService {
 public:
  VmService(sim::Simulation* sim, BillingLedger* billing,
            const LatencyConfig* latency, const PricingConfig* pricing,
            Rng rng)
      : sim_(sim),
        billing_(billing),
        latency_(latency),
        pricing_(pricing),
        rng_(rng) {}

  /// Launches a job-scoped VM; blocks (Holds) through the boot delay.
  /// Returns the VM id once the instance is ready to run work.
  Result<uint64_t> Launch(const std::string& type_name);

  /// Terminates and bills the instance (per-second, 60 s minimum).
  Status Terminate(uint64_t vm_id);

  Result<VmType> TypeOf(uint64_t vm_id) const;

  /// Bills an always-on fleet: `count` instances of `type` for `seconds`
  /// of wall-clock, independent of utilization.
  Status BillAlwaysOn(const std::string& type_name, double seconds,
                      int count);

 private:
  struct Vm {
    VmType type;
    double hourly = 0.0;
    double ready_at = 0.0;
  };

  Result<double> HourlyPrice(const std::string& type_name) const;

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  const PricingConfig* pricing_;
  Rng rng_;
  uint64_t next_vm_id_ = 1;
  std::map<uint64_t, Vm> vms_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_VM_H_
