// CloudEnv: the simulated cloud — one object owning every service, the
// billing ledger and the latency/pricing/compute configuration. Plays the
// role RocksDB's Env plays for storage: all environment access for the
// FSD-Inference runtime goes through here, so tests and experiments can
// swap configurations freely.
#ifndef FSD_CLOUD_CLOUD_H_
#define FSD_CLOUD_CLOUD_H_

#include <memory>

#include "cloud/billing.h"
#include "cloud/faas.h"
#include "cloud/kvstore.h"
#include "cloud/latency.h"
#include "cloud/objectstore.h"
#include "cloud/p2p.h"
#include "cloud/pricing.h"
#include "cloud/pubsub.h"
#include "cloud/queue.h"
#include "cloud/vm.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

struct CloudConfig {
  PricingConfig pricing;
  LatencyConfig latency;
  ComputeModelConfig compute;
  uint64_t seed = 42;
};

class CloudEnv {
 public:
  explicit CloudEnv(sim::Simulation* sim, CloudConfig config = {})
      : sim_(sim),
        config_(std::move(config)),
        billing_(config_.pricing),
        rng_(config_.seed),
        queues_(sim, &billing_, &config_.latency, rng_.Fork(1)),
        pubsub_(sim, &billing_, &config_.latency, &queues_, rng_.Fork(2)),
        objects_(sim, &billing_, &config_.latency, rng_.Fork(3)),
        faas_(sim, this, &billing_, &config_.latency, &config_.compute,
              rng_.Fork(4)),
        vms_(sim, &billing_, &config_.latency, &config_.pricing,
             rng_.Fork(5)),
        kv_(sim, &billing_, &config_.latency, rng_.Fork(6)),
        p2p_(sim, &billing_, &config_.latency, rng_.Fork(7)) {}

  CloudEnv(const CloudEnv&) = delete;
  CloudEnv& operator=(const CloudEnv&) = delete;

  sim::Simulation* sim() { return sim_; }
  const CloudConfig& config() const { return config_; }
  BillingLedger& billing() { return billing_; }
  const BillingLedger& billing() const { return billing_; }
  QueueService& queues() { return queues_; }
  PubSubService& pubsub() { return pubsub_; }
  ObjectStore& objects() { return objects_; }
  FaasService& faas() { return faas_; }
  VmService& vms() { return vms_; }
  KvStore& kv() { return kv_; }
  P2pFabric& p2p() { return p2p_; }
  const LatencyConfig& latency() const { return config_.latency; }
  const ComputeModelConfig& compute() const { return config_.compute; }

 private:
  sim::Simulation* sim_;
  CloudConfig config_;
  BillingLedger billing_;
  Rng rng_;
  QueueService queues_;
  PubSubService pubsub_;
  ObjectStore objects_;
  FaasService faas_;
  VmService vms_;
  KvStore kv_;
  P2pFabric p2p_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_CLOUD_H_
