#include "cloud/vm.h"

#include <algorithm>

namespace fsd::cloud {

Result<double> VmService::HourlyPrice(const std::string& type_name) const {
  auto it = pricing_->vm_hourly.find(type_name);
  if (it == pricing_->vm_hourly.end()) {
    return Status::NotFound("no price for VM type: " + type_name);
  }
  return it->second;
}

Result<uint64_t> VmService::Launch(const std::string& type_name) {
  auto type_it = VmCatalogue().find(type_name);
  if (type_it == VmCatalogue().end()) {
    return Status::NotFound("no such VM type: " + type_name);
  }
  FSD_ASSIGN_OR_RETURN(double hourly, HourlyPrice(type_name));
  const double boot = latency_->vm_boot.Sample(&rng_);
  sim_->Hold(boot);
  Vm vm;
  vm.type = type_it->second;
  vm.hourly = hourly;
  vm.ready_at = sim_->Now();
  const uint64_t id = next_vm_id_++;
  vms_.emplace(id, vm);
  return id;
}

Status VmService::Terminate(uint64_t vm_id) {
  auto it = vms_.find(vm_id);
  if (it == vms_.end()) return Status::NotFound("no such VM");
  // Billed from launch request (boot time is charged) with 60 s minimum.
  const double seconds =
      std::max(60.0, sim_->Now() - it->second.ready_at);
  billing_->RecordCost(BillingDimension::kVmSecond, seconds,
                       seconds * it->second.hourly / 3600.0);
  vms_.erase(it);
  return Status::OK();
}

Result<VmType> VmService::TypeOf(uint64_t vm_id) const {
  auto it = vms_.find(vm_id);
  if (it == vms_.end()) return Status::NotFound("no such VM");
  return it->second.type;
}

Status VmService::BillAlwaysOn(const std::string& type_name, double seconds,
                               int count) {
  FSD_ASSIGN_OR_RETURN(double hourly, HourlyPrice(type_name));
  billing_->RecordCost(BillingDimension::kVmSecond, seconds * count,
                       seconds * count * hourly / 3600.0);
  return Status::OK();
}

}  // namespace fsd::cloud
