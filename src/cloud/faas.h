// FaasService: scaled-by-request Function-as-a-Service (AWS Lambda model).
//
// Captures the FaaS properties the paper builds on (§II-A, §VI-A1):
//  - asynchronous invocation; each request runs in its own instance
//  - cold vs warm starts (idle instances are reused within a keep-alive)
//  - memory is configurable; vCPU share is proportional to memory
//  - a hard per-invocation runtime cap (15 minutes) — workers must check
//    the deadline and abort, exactly like real Lambda functions time out
//  - billing: per invocation + per MB-second of runtime (Eq. 4)
//  - instance-local state: an execution environment that is reused warm
//    keeps whatever state the previous invocation left in it (the
//    λScale-style warm-state lever the partition cache builds on)
#ifndef FSD_CLOUD_FAAS_H_
#define FSD_CLOUD_FAAS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

class CloudEnv;
class FaasService;

/// Compute-rate model: Lambda allocates vCPU proportional to memory
/// (1 vCPU per 1769 MB, capped at 6), and each vCPU sustains a calibrated
/// sparse-compute rate. Calibrated so FSD-Inf-Serial on a 10240 MB function
/// processes the N=1024 benchmark at ~2 ms/sample, matching Table II.
struct ComputeModelConfig {
  double gflops_per_vcpu = 0.68;
  double mb_per_vcpu = 1769.0;
  double max_faas_vcpus = 6.0;
  /// Payload (de)serialization + compression throughput per IPC lane,
  /// calibrated to the paper's Python + zlib stack.
  double serialize_bytes_per_s = 80.0e6;
  double deserialize_bytes_per_s = 120.0e6;
  /// Extra send-side pass the quantized wire mode spends per raw payload
  /// byte (scale scan + round + bit-pack); the cost model's break-even
  /// term prices this CPU against the billed bytes it saves.
  double quant_bytes_per_s = 160.0e6;

  double FaasVcpus(int memory_mb) const {
    const double v = static_cast<double>(memory_mb) / mb_per_vcpu;
    return v > max_faas_vcpus ? max_faas_vcpus : v;
  }
  /// Seconds of virtual time to execute `flops` floating-point operations.
  double FaasComputeSeconds(double flops, int memory_mb) const {
    return flops / (1e9 * gflops_per_vcpu * FaasVcpus(memory_mb));
  }
  double VmComputeSeconds(double flops, double vcpus) const {
    return flops / (1e9 * gflops_per_vcpu * vcpus);
  }
};

/// Execution context handed to a function handler. All virtual-time
/// consumption inside a handler goes through the context so the runtime
/// cap and MB-second billing stay accurate.
class FaasContext {
 public:
  sim::Simulation* sim() const { return sim_; }
  CloudEnv* cloud() const { return cloud_; }
  const Bytes& payload() const { return payload_; }
  int memory_mb() const { return memory_mb_; }
  uint64_t request_id() const { return request_id_; }
  const std::string& function_name() const { return function_name_; }
  double started_at() const { return started_at_; }
  double deadline() const { return deadline_; }
  /// Whether this invocation paid a cold start (no warm instance available).
  bool cold_start() const { return cold_start_; }
  /// Identity of the execution environment running this invocation. Stable
  /// across warm reuse: two invocations that report the same instance id
  /// ran in the same environment (and therefore share instance state).
  uint64_t instance_id() const { return instance_id_; }

  /// Instance-local state surviving warm reuse. A cold instance starts with
  /// nullptr; whatever a handler leaves here is visible to the next
  /// invocation that reuses this instance warm — exactly the in-memory
  /// residue (loaded libraries, caches, model weights) real FaaS handlers
  /// exploit. Reclaimed with the instance when the keep-alive expires.
  const std::shared_ptr<void>& instance_state() const {
    return instance_state_;
  }
  void set_instance_state(std::shared_ptr<void> state) {
    instance_state_ = std::move(state);
  }

  /// Charges `flops` of compute to virtual time; fails with
  /// DeadlineExceeded once the runtime cap is hit.
  Status Burn(double flops);

  /// Advances virtual time (e.g. framework overheads); deadline-checked.
  Status SleepFor(double dt);

  /// Deadline-checked Simulation::Offload: runs `fn` while `dt` seconds of
  /// virtual time pass (overlapping it on a real pool thread when the sim
  /// has compute_threads > 0). Same determinism contract as Offload: `fn`
  /// may only touch this handler's own state and immutable shared data.
  Status OffloadFor(double dt, std::function<void()> fn);

  /// Remaining runtime before the cap (<= 0 means already over).
  double RemainingTime() const;

  /// Returns DeadlineExceeded if the cap has been reached.
  Status CheckDeadline() const;

  /// Handlers report their terminal status here (NOT by throwing).
  void set_result(Status status) { result_ = std::move(status); }
  const Status& result() const { return result_; }

 private:
  friend class FaasService;
  sim::Simulation* sim_ = nullptr;
  CloudEnv* cloud_ = nullptr;
  FaasService* service_ = nullptr;
  std::string function_name_;
  uint64_t request_id_ = 0;
  int memory_mb_ = 128;
  double started_at_ = 0.0;
  double deadline_ = 0.0;
  bool cold_start_ = false;
  uint64_t instance_id_ = 0;
  std::shared_ptr<void> instance_state_;
  Bytes payload_;
  Status result_;
};

using FaasHandler = std::function<void(FaasContext*)>;

struct FaasFunctionConfig {
  std::string name;
  int memory_mb = 128;        ///< 128..10240 (AWS Lambda bounds)
  double timeout_s = 900.0;   ///< runtime cap; AWS max is 15 minutes
  FaasHandler handler;
};

/// Hard provider bounds (AWS Lambda at the time of the paper).
constexpr int kFaasMinMemoryMb = 128;
constexpr int kFaasMaxMemoryMb = 10240;
constexpr double kFaasMaxTimeoutS = 900.0;

class FaasService {
 public:
  FaasService(sim::Simulation* sim, CloudEnv* cloud, BillingLedger* billing,
              const LatencyConfig* latency, const ComputeModelConfig* compute,
              Rng rng)
      : sim_(sim),
        cloud_(cloud),
        billing_(billing),
        latency_(latency),
        compute_(compute),
        rng_(rng) {}

  Status RegisterFunction(FaasFunctionConfig config);

  struct InvokeOutcome {
    Status status;
    uint64_t request_id = 0;
    /// Fires when the handler finishes (joinable via Simulation::WaitSignal).
    std::shared_ptr<sim::SimSignal> completion;
  };

  /// Asynchronous invocation ("Event" invocation type): returns immediately;
  /// the handler starts after the cold/warm start delay.
  InvokeOutcome InvokeAsync(const std::string& function, Bytes payload);

  /// Last observed runtime and status per request (for joins/metrics).
  struct CompletionRecord {
    Status status;
    double duration_s = 0.0;
    bool cold_start = false;
  };
  Result<CompletionRecord> completion(uint64_t request_id) const;

  /// Number of warm (idle, reusable) instances for a function.
  int WarmCount(const std::string& function) const;

  /// How long an idle instance stays warm before reclaim.
  void set_keep_alive_s(double s) { keep_alive_s_ = s; }

  const ComputeModelConfig& compute_model() const { return *compute_; }

 private:
  /// An idle execution environment: identity + the state its last
  /// invocation left behind, reusable until the keep-alive expires.
  struct Instance {
    uint64_t id = 0;
    double warm_until = 0.0;
    std::shared_ptr<void> state;
  };
  struct Function {
    FaasFunctionConfig config;
    /// Idle warm instances, in release order (most recent last; warm
    /// invocations take the most recently released instance, as Lambda's
    /// LIFO reuse does).
    std::vector<Instance> warm;
  };

  sim::Simulation* sim_;
  CloudEnv* cloud_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  const ComputeModelConfig* compute_;
  Rng rng_;
  double keep_alive_s_ = 600.0;
  uint64_t next_request_id_ = 1;
  uint64_t next_instance_id_ = 1;
  std::map<std::string, Function> functions_;
  std::map<uint64_t, CompletionRecord> completions_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_FAAS_H_
