// Latency models for the simulated cloud services.
//
// Every API call samples  base (lognormal around a median)  +  size / bandwidth.
// Defaults are calibrated to public measurements of the corresponding AWS
// services from Lambda clients in-region (order-of-magnitude fidelity; the
// paper's conclusions depend on relative magnitudes, which these preserve:
// queue/pub-sub ops ~10-40 ms, object storage ops ~20-60 ms + bandwidth,
// FaaS cold starts ~150-250 ms, VM boot ~40-90 s).
#ifndef FSD_CLOUD_LATENCY_H_
#define FSD_CLOUD_LATENCY_H_

#include <cmath>

#include "common/rng.h"

namespace fsd::cloud {

/// One operation's latency distribution.
struct OpLatency {
  double median_s = 0.02;      ///< median of the base latency
  double sigma = 0.25;         ///< lognormal shape (jitter)
  double bytes_per_s = 0.0;    ///< >0 adds size/bandwidth transfer time

  /// Samples a latency for a call moving `bytes` payload bytes.
  double Sample(Rng* rng, uint64_t bytes = 0) const {
    const double base = rng->NextLogNormal(std::log(median_s), sigma);
    const double xfer =
        bytes_per_s > 0.0 ? static_cast<double>(bytes) / bytes_per_s : 0.0;
    return base + xfer;
  }
};

/// Full latency catalogue (one knob per simulated API).
struct LatencyConfig {
  // FaaS
  OpLatency faas_cold_start{0.180, 0.20, 0.0};
  OpLatency faas_warm_start{0.025, 0.25, 0.0};
  /// Invoke API round trip paid by the CALLER of InvokeAsync (the driver of
  /// launch-tree timings: a centralized loop pays it P times sequentially;
  /// ~25 ms matches a boto3 Lambda invoke from inside the same region).
  OpLatency faas_invoke_api{0.025, 0.30, 0.0};
  /// Loading the function package/model share from object storage is
  /// modelled separately by workers via object_get.

  // Pub-sub (SNS): publish API call and fan-out delivery to queues.
  OpLatency pubsub_publish{0.022, 0.30, 60.0e6};
  OpLatency pubsub_fanout{0.015, 0.35, 120.0e6};

  // Queues (SQS)
  OpLatency queue_receive{0.012, 0.30, 90.0e6};
  OpLatency queue_delete{0.008, 0.25, 0.0};

  // Object storage (S3)
  OpLatency object_put{0.028, 0.30, 95.0e6};
  OpLatency object_get{0.018, 0.30, 110.0e6};
  OpLatency object_list{0.025, 0.25, 0.0};

  // In-memory KV (ElastiCache/Redis in-VPC): sub-millisecond ops, the
  // latency class queue/object APIs cannot reach.
  OpLatency kv_push{0.0009, 0.30, 220.0e6};
  OpLatency kv_pop{0.0008, 0.30, 260.0e6};

  // Direct worker-to-worker links (FMI-style NAT hole punching over TCP).
  /// One-time STUN exchange + punch handshake per worker pair (mutual —
  /// one handshake serves both directions), brokered by the coordinator;
  /// punches run concurrently on async sockets, so a worker pays roughly
  /// one sample regardless of fan-out.
  OpLatency p2p_setup{0.025, 0.30, 0.0};
  /// Per-message dispatch latency on an established link (kernel TCP path,
  /// no service hop — the latency class below even the in-memory KV).
  OpLatency p2p_send{0.0004, 0.25, 0.0};
  /// Nominal per-pair link bandwidth; the realized bandwidth of each pair
  /// is scaled by a deterministic factor in
  /// [1 - spread/2, 1 + spread/2] (NAT path quality varies per pair).
  double p2p_bandwidth_bytes_per_s = 300.0e6;
  double p2p_bandwidth_spread = 0.5;
  /// Fraction of worker pairs whose hole punch fails (symmetric NATs,
  /// carrier-grade NAT): those pairs fall back to the KV relay.
  /// Deterministic and symmetric per (session, {src, dst}).
  double p2p_punch_failure_rate = 0.08;

  // VM lifecycle (EC2 + image boot)
  OpLatency vm_boot{45.0, 0.15, 0.0};
  /// EBS sequential read bandwidth for "hot-ish" model loads (bytes/s).
  double ebs_read_bytes_per_s = 260.0e6;

  /// Service-side rate limits (per topic / per bucket-prefix), requests/s.
  /// Exceeding them adds queueing delay — the bottleneck the paper's
  /// multi-topic / multi-bucket sharding avoids.
  double pubsub_topic_rps = 300.0;
  double object_put_rps_per_bucket = 3500.0;
  double object_get_rps_per_bucket = 5500.0;
  double object_list_rps_per_bucket = 100.0;
  /// Per-shard op cap of a KV namespace (cluster slot throughput).
  double kv_ops_rps_per_shard = 90000.0;
};

/// Leaky-bucket rate limiter: returns the queueing delay an arrival at
/// `now` experiences given the resource's request rate cap.
class RateLimiter {
 public:
  explicit RateLimiter(double max_rps) : service_time_(1.0 / max_rps) {}

  double AdmissionDelay(double now) {
    const double start = (next_free_ > now) ? next_free_ : now;
    next_free_ = start + service_time_;
    return start - now;
  }

 private:
  double service_time_;
  double next_free_ = 0.0;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_LATENCY_H_
