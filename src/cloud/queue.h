// QueueService: SQS-like message queues for the simulated cloud.
//
// Faithful to the mechanisms FSD-Inference depends on (paper §III-A/C1):
//  - each queue's messages are spread over multiple backend "servers"
//    (shards); SHORT polling samples a subset of shards and can miss
//    messages, LONG polling visits all shards and waits up to `wait_s`
//  - at most 10 messages are returned per receive
//  - consumers delete messages explicitly; undeleted messages reappear
//    after the visibility timeout
//  - every API call (receive, delete batch, direct send) is billed
#ifndef FSD_CLOUD_QUEUE_H_
#define FSD_CLOUD_QUEUE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

/// Maximum messages returned by one receive call (AWS SQS limit).
constexpr int kMaxMessagesPerReceive = 10;

/// A queue message: opaque body plus string attributes (used for routing
/// metadata: source worker, layer, chunk counts).
struct QueueMessage {
  uint64_t id = 0;  // assigned by the service
  Bytes body;
  std::map<std::string, std::string> attributes;

  uint64_t SizeBytes() const;
};

struct QueueOptions {
  /// Backend servers the queue's messages are distributed over.
  int num_shards = 4;
  /// Received-but-undeleted messages reappear after this long.
  double visibility_timeout_s = 30.0;
  /// Probability that a short poll visits any given shard.
  double short_poll_shard_prob = 0.7;
};

class QueueService {
 public:
  QueueService(sim::Simulation* sim, BillingLedger* billing,
               const LatencyConfig* latency, Rng rng)
      : sim_(sim), billing_(billing), latency_(latency), rng_(rng) {}

  Status CreateQueue(const std::string& name, QueueOptions options = {});
  bool QueueExists(const std::string& name) const;

  /// Service-side delivery (pub-sub fan-out): enqueues without billing a
  /// queue API call (the transfer was billed by the pub-sub service).
  Status Deliver(const std::string& name, QueueMessage message);

  /// Direct producer send; bills one queue API call. Blocking (Holds).
  Status SendMessage(const std::string& name, QueueMessage message);

  /// Receives up to `max_messages` (<=10). Blocking (Holds latency and, for
  /// long polls, up to `wait_s` while the queue is empty). wait_s == 0 is a
  /// short poll: a subset of shards is sampled and messages may be missed.
  /// Bills exactly one API call. Returns possibly-empty vector.
  Result<std::vector<QueueMessage>> Receive(const std::string& name,
                                            int max_messages, double wait_s);

  /// Deletes up to 10 messages by id; bills one API call. Blocking.
  Status DeleteMessages(const std::string& name,
                        const std::vector<uint64_t>& ids);

  /// Visible + in-flight message count (diagnostics/tests).
  Result<size_t> ApproximateDepth(const std::string& name) const;

 private:
  struct StoredMessage {
    QueueMessage message;
    double visible_at = 0.0;  // > now means in flight
  };
  struct Queue {
    QueueOptions options;
    std::vector<std::deque<StoredMessage>> shards;
    std::shared_ptr<sim::SimSignal> arrival_signal;
    uint64_t next_shard = 0;  // round-robin placement
  };

  Queue* Find(const std::string& name);
  const Queue* Find(const std::string& name) const;

  /// Gathers up to `limit` visible messages; `sample_shards` models short
  /// polling. Marks gathered messages in flight.
  std::vector<QueueMessage> Gather(Queue* queue, int limit,
                                   bool sample_shards);

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  Rng rng_;
  uint64_t next_message_id_ = 1;
  std::map<std::string, Queue> queues_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_QUEUE_H_
