// KvStore: ElastiCache/Redis-style in-memory key-value service for the
// simulated cloud.
//
// Models the properties a low-latency serverless communication channel
// depends on (FMI-style message passing over a managed cache):
//  - namespaces ("caches"/logical databases): created per run, deleted at
//    teardown; node time is billed for the namespace's lifetime, the
//    standing cost that distinguishes a cache from request-priced storage
//  - list keys with RPUSH-style appends and BLPOP-style blocking pops;
//    pops are destructive, so there is no delete API call and no
//    visibility-timeout redelivery (unlike SQS)
//  - sub-millisecond operation latency (in-VPC Redis), orders of magnitude
//    below queue/object-storage APIs
//  - per-shard request-rate caps: sharding a namespace raises the
//    aggregate op limit, mirroring cluster-mode slot spreading
//  - every operation is billed per request plus per processed byte
//    (ECPU-style metering)
#ifndef FSD_CLOUD_KVSTORE_H_
#define FSD_CLOUD_KVSTORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

/// Maximum values returned by one blocking pop (bounds per-call work, like
/// a pipelined LPOP with COUNT).
constexpr int kMaxValuesPerPop = 64;

struct KvNamespaceOptions {
  /// Cluster shards the namespace's keys are spread over; each shard has
  /// its own request-rate cap.
  int num_shards = 4;
};

class KvStore {
 public:
  KvStore(sim::Simulation* sim, BillingLedger* billing,
          const LatencyConfig* latency, Rng rng)
      : sim_(sim), billing_(billing), latency_(latency), rng_(rng) {}

  /// Creates a namespace. Control-plane operation: not billed per request
  /// and not timed. Node-time billing starts at the namespace's FIRST
  /// data-plane use, not at creation — serving runtimes provision ahead of
  /// a query's arrival, and idle pre-provisioned namespaces are free, as
  /// with a serverless cache's activity-based minimum.
  Status CreateNamespace(const std::string& name,
                         KvNamespaceOptions options = {});
  bool NamespaceExists(const std::string& name) const;

  /// Deletes the namespace and bills kKvNodeSecond for its active window
  /// (first use -> now; zero if never used). Control-plane operation;
  /// pending blocking pops see NotFound on their next wake.
  Status DeleteNamespace(const std::string& name);

  struct PushOutcome {
    Status status;
    /// Round-trip latency (including rate-limit queueing); the value
    /// becomes poppable at call time + latency.
    double latency = 0.0;
  };

  /// RPUSH-style append of `value` to list `key`. Non-blocking: bills one
  /// request plus processed bytes and schedules visibility, so callers can
  /// dispatch pushes on parallel lanes.
  PushOutcome Push(const std::string& ns, const std::string& key,
                   Bytes value);

  /// BLPOP-style pop of up to `max_values` (<= 64) values from list `key`,
  /// waiting up to `wait_s` while the list is empty (0 returns
  /// immediately). Bills one request plus popped bytes. Blocking (Holds
  /// the op latency). Returns a possibly-empty vector.
  Result<std::vector<Bytes>> BlockingPopAll(const std::string& ns,
                                            const std::string& key,
                                            int max_values, double wait_s);

  /// Plain SET (overwrites). Blocking; bills one request + bytes.
  Status Set(const std::string& ns, const std::string& key, Bytes value);

  /// Plain GET. Blocking; bills one request + bytes. NotFound if absent.
  Result<Bytes> Get(const std::string& ns, const std::string& key);

  /// Visible values on list `key` (diagnostics/tests).
  Result<size_t> ListLength(const std::string& ns,
                            const std::string& key) const;

  /// Total stored bytes across namespaces (diagnostics).
  uint64_t TotalBytes() const;

 private:
  struct StoredValue {
    Bytes body;
    double visible_at = 0.0;
  };
  struct ListEntry {
    std::deque<StoredValue> values;
    std::shared_ptr<sim::SimSignal> arrival_signal;
  };
  struct Namespace {
    KvNamespaceOptions options;
    double first_use_at = -1.0;  ///< < 0 until the first data-plane call
    std::map<std::string, ListEntry> lists;
    std::map<std::string, StoredValue> kv;  // plain SET/GET space
    std::vector<std::unique_ptr<RateLimiter>> shard_limiters;
  };

  Namespace* Find(const std::string& name);
  const Namespace* Find(const std::string& name) const;
  /// Admission delay on the shard owning `key` (cluster slot by hash).
  double ShardDelay(Namespace* ns, const std::string& key);
  /// Bills one request (+ bytes) and starts the node-billing window.
  void BillRequest(Namespace* ns, uint64_t bytes);

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  Rng rng_;
  std::map<std::string, Namespace> namespaces_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_KVSTORE_H_
