// P2pFabric: simulated NAT-punched direct worker-to-worker links (the
// transport FMI builds on; FSD-Inf-Direct's data plane).
//
// Models what distinguishes direct TCP links from every managed service in
// this cloud:
//  - a one-time, per-unordered-pair connection setup (STUN exchange + hole
//    punch brokered by the coordinator — punching is mutual, so the pair
//    shares ONE physical link whichever side asks first), billed once per
//    established link
//  - deterministic, probabilistic punch FAILURE per pair (symmetric /
//    carrier-grade NATs): failed pairs must relay through a managed
//    service instead — the fabric never carries their data
//  - per-pair bandwidth variation (NAT path quality differs per pair)
//  - sub-millisecond sends with NO per-request service charge and NO
//    service-side rate cap: once punched, the link is kernel TCP, so only
//    bytes are billed (inter-AZ transfer class)
//  - delivery into per-key receiver inboxes with KvStore-style blocking
//    pops, so receive loops can long-poll without spinning
#ifndef FSD_CLOUD_P2P_H_
#define FSD_CLOUD_P2P_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

/// Maximum values returned by one blocking inbox pop (mirrors the KV
/// store's bound so receive loops share drain logic).
constexpr int kMaxValuesPerInboxPop = 64;

class P2pFabric {
 public:
  P2pFabric(sim::Simulation* sim, BillingLedger* billing,
            const LatencyConfig* latency, Rng rng)
      : sim_(sim), billing_(billing), latency_(latency), rng_(rng) {}

  /// Creates a punch-brokering session (one per run scope). Control-plane
  /// operation: not billed and not timed.
  Status CreateSession(const std::string& name);
  bool SessionExists(const std::string& name) const;

  /// Tears the session down: established links close (free) and pending
  /// blocking pops observe NotFound on their next wake.
  Status DeleteSession(const std::string& name);

  struct ConnectOutcome {
    Status status;
    /// Link established; false means the hole punch failed and the pair
    /// must relay through a managed service.
    bool punched = false;
    /// First Connect touching this unordered pair from either side (a
    /// fresh punch attempt was made; successful fresh punches bill one
    /// kP2pConnection). Connect(b, a) after Connect(a, b) is NOT fresh:
    /// the handshake already established the link both ways.
    bool fresh = false;
    /// Seconds until the link is usable (remaining handshake time; sends
    /// dispatched earlier deliver after the link is ready). Zero once the
    /// handshake completed, and always zero for failed punches.
    double setup_s = 0.0;
  };

  /// Ensures the pair's link exists (idempotent; cached after the first
  /// call from either side). Non-blocking: the punch handshake runs on
  /// async sockets, so the caller keeps working while it completes.
  /// Whether a pair punches at all is DETERMINISTIC in (session creation
  /// index on this fabric, {src, dst}) — symmetric, independent of call
  /// order AND of the session's name, so reruns on a fresh CloudEnv
  /// replay the same punch pattern even though per-run channel scopes
  /// embed a process-global run counter.
  ConnectOutcome Connect(const std::string& session, int32_t src,
                         int32_t dst);

  struct SendOutcome {
    Status status;
    /// Delay from call time until the value is poppable at the receiver
    /// (includes any remaining handshake time plus transfer).
    double latency = 0.0;
  };

  /// Ships `value` over the punched link src->dst into the receiver inbox
  /// `key`. Non-blocking (callers dispatch on parallel lanes); bills
  /// kP2pByte only. FailedPrecondition if the pair never punched.
  SendOutcome Send(const std::string& session, int32_t src, int32_t dst,
                   const std::string& key, Bytes value);

  /// BLPOP-style pop of up to `max_values` (<= 64) values from inbox
  /// `key`, waiting up to `wait_s` while it is empty. Unbilled: the inbox
  /// is the receiving worker's own memory, not a service. No Hold beyond
  /// the wait — delivered values already paid their link latency.
  Result<std::vector<Bytes>> BlockingPopAll(const std::string& session,
                                            const std::string& key,
                                            int max_values, double wait_s);

  /// Visible values on inbox `key` (diagnostics/tests).
  Result<size_t> InboxDepth(const std::string& session,
                            const std::string& key) const;

 private:
  struct Link {
    bool punched = false;
    double ready_at = 0.0;  ///< handshake completion (virtual time)
    double bandwidth_bytes_per_s = 0.0;
  };
  struct DeliveredValue {
    Bytes body;
    double visible_at = 0.0;
  };
  struct Inbox {
    std::deque<DeliveredValue> values;
    std::shared_ptr<sim::SimSignal> arrival_signal;
  };
  struct Session {
    /// Per-session draw salt: the fabric-local creation index. Punch luck
    /// must not derive from the session NAME — scoped names embed a
    /// process-global run counter, which would make otherwise-identical
    /// runs draw different punch patterns within one process.
    uint64_t salt = 0;
    std::map<std::pair<int32_t, int32_t>, Link> links;
    std::map<std::string, Inbox> inboxes;
  };

  Session* Find(const std::string& name);
  const Session* Find(const std::string& name) const;

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  Rng rng_;
  uint64_t next_session_salt_ = 0;
  std::map<std::string, Session> sessions_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_P2P_H_
