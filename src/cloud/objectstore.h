// ObjectStore: S3-like object storage for the simulated cloud.
//
// Reproduces the properties FSD-Inf-Object depends on (paper §III-B):
//  - buckets with prefix-scoped LIST (paginated), PUT and GET
//  - requests billed per call, independent of object size (Eq. 7)
//  - per-bucket request-rate caps; using k buckets raises the aggregate
//    API limit k-fold, which is why the channel shards over buckets
//  - strong read-after-write consistency: an object is visible to LIST/GET
//    once its PUT completes (PUT latency models the upload)
#ifndef FSD_CLOUD_OBJECTSTORE_H_
#define FSD_CLOUD_OBJECTSTORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/latency.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace fsd::cloud {

/// LIST pagination size (AWS S3 list-objects-v2).
constexpr size_t kListPageSize = 1000;

struct ObjectMeta {
  std::string key;
  uint64_t size = 0;
};

class ObjectStore {
 public:
  ObjectStore(sim::Simulation* sim, BillingLedger* billing,
              const LatencyConfig* latency, Rng rng)
      : sim_(sim), billing_(billing), latency_(latency), rng_(rng) {}

  Status CreateBucket(const std::string& name);
  bool BucketExists(const std::string& name) const;

  struct PutOutcome {
    Status status;
    /// Upload round-trip latency (including rate-limit queueing). The
    /// object becomes visible at call time + latency.
    double latency = 0.0;
  };

  /// Non-blocking PUT: bills one PUT request, schedules visibility.
  PutOutcome Put(const std::string& bucket, const std::string& key,
                 Bytes body);

  struct GetOutcome {
    Status status;
    double latency = 0.0;
    Bytes body;
  };

  /// Non-blocking GET: bills one GET request and returns the body plus the
  /// latency the caller must account before using it (enables parallel
  /// read lanes via sim::ParallelMakespan).
  GetOutcome Get(const std::string& bucket, const std::string& key);

  /// Blocking GET convenience (Holds the sampled latency).
  Result<Bytes> GetBlocking(const std::string& bucket, const std::string& key);

  /// Blocking LIST of keys under `prefix` (lexicographic). Bills one LIST
  /// request per page. Returns only objects visible at call time.
  Result<std::vector<ObjectMeta>> List(const std::string& bucket,
                                       const std::string& prefix);

  /// Deletes an object (free on AWS; no billing dimension).
  Status Delete(const std::string& bucket, const std::string& key);

  /// Total stored bytes across buckets (diagnostics).
  uint64_t TotalBytes() const;

 private:
  struct StoredObject {
    Bytes body;
    double visible_at = 0.0;
  };
  struct Bucket {
    std::map<std::string, StoredObject> objects;  // ordered for LIST
    std::unique_ptr<RateLimiter> put_limiter;
    std::unique_ptr<RateLimiter> get_limiter;
    std::unique_ptr<RateLimiter> list_limiter;
  };

  Bucket* Find(const std::string& name);
  const Bucket* Find(const std::string& name) const;

  sim::Simulation* sim_;
  BillingLedger* billing_;
  const LatencyConfig* latency_;
  Rng rng_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace fsd::cloud

#endif  // FSD_CLOUD_OBJECTSTORE_H_
