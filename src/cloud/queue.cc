#include "cloud/queue.h"

#include <algorithm>

namespace fsd::cloud {

uint64_t QueueMessage::SizeBytes() const {
  uint64_t size = body.size();
  for (const auto& [key, value] : attributes) {
    size += key.size() + value.size() + 16;  // per-attribute envelope
  }
  return size;
}

Status QueueService::CreateQueue(const std::string& name,
                                 QueueOptions options) {
  if (queues_.contains(name)) {
    return Status::AlreadyExists("queue exists: " + name);
  }
  FSD_CHECK_GE(options.num_shards, 1);
  Queue queue;
  queue.options = options;
  queue.shards.resize(options.num_shards);
  queue.arrival_signal = sim_->MakeSignal();
  queues_.emplace(name, std::move(queue));
  return Status::OK();
}

bool QueueService::QueueExists(const std::string& name) const {
  return queues_.contains(name);
}

QueueService::Queue* QueueService::Find(const std::string& name) {
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : &it->second;
}

const QueueService::Queue* QueueService::Find(const std::string& name) const {
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : &it->second;
}

Status QueueService::Deliver(const std::string& name, QueueMessage message) {
  Queue* queue = Find(name);
  if (queue == nullptr) return Status::NotFound("no such queue: " + name);
  message.id = next_message_id_++;
  StoredMessage stored{std::move(message), /*visible_at=*/0.0};
  queue->shards[queue->next_shard % queue->shards.size()].push_back(
      std::move(stored));
  ++queue->next_shard;
  // Wake any long-pollers, then arm a fresh signal for the next arrival.
  queue->arrival_signal->Fire();
  queue->arrival_signal = sim_->MakeSignal();
  return Status::OK();
}

Status QueueService::SendMessage(const std::string& name,
                                 QueueMessage message) {
  if (!queues_.contains(name)) {
    return Status::NotFound("no such queue: " + name);
  }
  billing_->Record(BillingDimension::kQueueApiCall, 1);
  sim_->Hold(latency_->queue_receive.Sample(&rng_, message.SizeBytes()));
  return Deliver(name, std::move(message));
}

std::vector<QueueMessage> QueueService::Gather(Queue* queue, int limit,
                                               bool sample_shards) {
  std::vector<QueueMessage> out;
  const double now = sim_->Now();
  for (auto& shard : queue->shards) {
    if (static_cast<int>(out.size()) >= limit) break;
    if (sample_shards &&
        !rng_.NextBool(queue->options.short_poll_shard_prob)) {
      continue;  // short polling skipped this backend server
    }
    for (StoredMessage& stored : shard) {
      if (static_cast<int>(out.size()) >= limit) break;
      if (stored.visible_at > now) continue;  // in flight
      stored.visible_at = now + queue->options.visibility_timeout_s;
      out.push_back(stored.message);
    }
  }
  return out;
}

Result<std::vector<QueueMessage>> QueueService::Receive(
    const std::string& name, int max_messages, double wait_s) {
  Queue* queue = Find(name);
  if (queue == nullptr) return Status::NotFound("no such queue: " + name);
  if (max_messages < 1 || max_messages > kMaxMessagesPerReceive) {
    return Status::InvalidArgument("max_messages must be in [1, 10]");
  }
  billing_->Record(BillingDimension::kQueueApiCall, 1);

  const bool long_poll = wait_s > 0.0;
  const double deadline = sim_->Now() + wait_s;
  std::vector<QueueMessage> got =
      Gather(queue, max_messages, /*sample_shards=*/!long_poll);
  while (long_poll && got.empty()) {
    const double remaining = deadline - sim_->Now();
    if (remaining <= 0.0) break;
    // Block until a new arrival or the long-poll window closes. The service
    // re-checks after each wake because another consumer may have raced us.
    std::shared_ptr<sim::SimSignal> signal = queue->arrival_signal;
    if (!sim_->WaitSignal(signal.get(), remaining)) break;
    got = Gather(queue, max_messages, /*sample_shards=*/false);
  }

  uint64_t bytes = 0;
  for (const QueueMessage& m : got) bytes += m.SizeBytes();
  sim_->Hold(latency_->queue_receive.Sample(&rng_, bytes));
  return got;
}

Status QueueService::DeleteMessages(const std::string& name,
                                    const std::vector<uint64_t>& ids) {
  Queue* queue = Find(name);
  if (queue == nullptr) return Status::NotFound("no such queue: " + name);
  if (ids.size() > static_cast<size_t>(kMaxMessagesPerReceive)) {
    return Status::InvalidArgument("delete batch limited to 10 messages");
  }
  billing_->Record(BillingDimension::kQueueApiCall, 1);
  for (auto& shard : queue->shards) {
    auto new_end = std::remove_if(
        shard.begin(), shard.end(), [&ids](const StoredMessage& stored) {
          return std::find(ids.begin(), ids.end(), stored.message.id) !=
                 ids.end();
        });
    shard.erase(new_end, shard.end());
  }
  sim_->Hold(latency_->queue_delete.Sample(&rng_));
  return Status::OK();
}

Result<size_t> QueueService::ApproximateDepth(const std::string& name) const {
  const Queue* queue = Find(name);
  if (queue == nullptr) return Status::NotFound("no such queue: " + name);
  size_t depth = 0;
  for (const auto& shard : queue->shards) depth += shard.size();
  return depth;
}

}  // namespace fsd::cloud
