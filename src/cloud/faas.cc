#include "cloud/faas.h"

#include <algorithm>

#include "common/strings.h"

namespace fsd::cloud {

Status FaasContext::Burn(double flops) {
  FSD_RETURN_IF_ERROR(CheckDeadline());
  sim_->Hold(service_->compute_model().FaasComputeSeconds(flops, memory_mb_));
  return CheckDeadline();
}

Status FaasContext::SleepFor(double dt) {
  FSD_RETURN_IF_ERROR(CheckDeadline());
  sim_->Hold(dt);
  return CheckDeadline();
}

Status FaasContext::OffloadFor(double dt, std::function<void()> fn) {
  FSD_RETURN_IF_ERROR(CheckDeadline());
  sim_->Offload(dt, std::move(fn));
  return CheckDeadline();
}

double FaasContext::RemainingTime() const { return deadline_ - sim_->Now(); }

Status FaasContext::CheckDeadline() const {
  if (sim_->Now() >= deadline_) {
    return Status::DeadlineExceeded(
        StrFormat("function %s request %llu exceeded %.0fs runtime cap",
                  function_name_.c_str(),
                  static_cast<unsigned long long>(request_id_),
                  deadline_ - started_at_));
  }
  return Status::OK();
}

Status FaasService::RegisterFunction(FaasFunctionConfig config) {
  if (config.name.empty() || !config.handler) {
    return Status::InvalidArgument("function needs a name and a handler");
  }
  if (config.memory_mb < kFaasMinMemoryMb ||
      config.memory_mb > kFaasMaxMemoryMb) {
    return Status::InvalidArgument(
        StrFormat("memory %d MB outside provider bounds [%d, %d]",
                  config.memory_mb, kFaasMinMemoryMb, kFaasMaxMemoryMb));
  }
  if (config.timeout_s <= 0.0 || config.timeout_s > kFaasMaxTimeoutS) {
    return Status::InvalidArgument("timeout outside provider bounds");
  }
  if (functions_.contains(config.name)) {
    return Status::AlreadyExists("function exists: " + config.name);
  }
  Function fn;
  fn.config = std::move(config);
  const std::string name = fn.config.name;
  functions_.emplace(name, std::move(fn));
  return Status::OK();
}

FaasService::InvokeOutcome FaasService::InvokeAsync(const std::string& name,
                                                    Bytes payload) {
  InvokeOutcome outcome;
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    outcome.status = Status::NotFound("no such function: " + name);
    return outcome;
  }
  Function& fn = it->second;
  const uint64_t request_id = next_request_id_++;
  outcome.request_id = request_id;
  outcome.completion = sim_->MakeSignal();
  billing_->Record(BillingDimension::kFaasInvocation, 1);

  // Warm-instance pools: reclaim expired instances fleet-wide (their state
  // dies with them — an instance past its keep-alive must not linger just
  // because ITS function went quiet; observers holding weak references to
  // instance state, like the share distributor's holder registry, rely on
  // expiry actually freeing it), then try to grab the most recently
  // released one of this function's pool (LIFO reuse).
  const double now = sim_->Now();
  for (auto& entry : functions_) {
    auto& expired = entry.second.warm;
    expired.erase(
        std::remove_if(
            expired.begin(), expired.end(),
            [now](const Instance& i) { return i.warm_until <= now; }),
        expired.end());
  }
  auto& pool = fn.warm;
  const bool cold = pool.empty();
  Instance instance;
  if (cold) {
    instance.id = next_instance_id_++;
  } else {
    instance = std::move(pool.back());
    pool.pop_back();
  }

  const double start_delay = cold ? latency_->faas_cold_start.Sample(&rng_)
                                  : latency_->faas_warm_start.Sample(&rng_);

  auto completion = outcome.completion;
  auto body = [this, &fn, request_id, completion, cold,
               instance = std::move(instance),
               payload = std::move(payload)]() mutable {
    FaasContext ctx;
    ctx.sim_ = sim_;
    ctx.cloud_ = cloud_;
    ctx.service_ = this;
    ctx.function_name_ = fn.config.name;
    ctx.request_id_ = request_id;
    ctx.memory_mb_ = fn.config.memory_mb;
    ctx.started_at_ = sim_->Now();
    ctx.deadline_ = sim_->Now() + fn.config.timeout_s;
    ctx.cold_start_ = cold;
    ctx.instance_id_ = instance.id;
    ctx.instance_state_ = std::move(instance.state);
    ctx.payload_ = std::move(payload);
    fn.config.handler(&ctx);
    // Billing: runtime is capped at the timeout (timed-out functions are
    // billed for the full cap, as on AWS).
    const double duration =
        std::min(sim_->Now() - ctx.started_at_, fn.config.timeout_s);
    billing_->Record(BillingDimension::kFaasRuntimeMbSec,
                     duration * fn.config.memory_mb);
    completions_[request_id] =
        CompletionRecord{ctx.result(), duration, cold};
    // The instance becomes warm and reusable, carrying whatever state the
    // handler left in it.
    instance.state = std::move(ctx.instance_state_);
    instance.warm_until = sim_->Now() + keep_alive_s_;
    fn.warm.push_back(std::move(instance));
    completion->Fire();
  };

  sim_->AddProcess(
      StrFormat("faas:%s#%llu", name.c_str(),
                static_cast<unsigned long long>(request_id)),
      std::move(body), /*start=*/start_delay);
  outcome.status = Status::OK();
  return outcome;
}

Result<FaasService::CompletionRecord> FaasService::completion(
    uint64_t request_id) const {
  auto it = completions_.find(request_id);
  if (it == completions_.end()) {
    return Status::NotFound("request not complete");
  }
  return it->second;
}

int FaasService::WarmCount(const std::string& function) const {
  auto it = functions_.find(function);
  if (it == functions_.end()) return 0;
  const double now = sim_->Now();
  int count = 0;
  for (const Instance& instance : it->second.warm) {
    if (instance.warm_until > now) ++count;
  }
  return count;
}

}  // namespace fsd::cloud
