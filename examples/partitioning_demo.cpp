// Partitioning demo: why FSD-Inference adapts hypergraph partitioning
// (paper §III, Table III). Partitions one model three ways and shows the
// static communication volume each scheme implies, then runs the object
// channel under the best and worst schemes to show the end-to-end effect.
//
//   $ ./examples/partitioning_demo
#include <cstdio>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/runtime.h"
#include "model/input_gen.h"
#include "part/model_partition.h"

int main() {
  using namespace fsd;

  model::SparseDnnConfig mc;
  mc.neurons = 4096;
  mc.layers = 12;
  auto dnn = model::GenerateSparseDnn(mc);
  model::InputConfig ic;
  ic.neurons = mc.neurons;
  ic.batch = 128;
  auto input = model::GenerateInputBatch(ic);
  const int32_t workers = 16;

  std::printf("Partitioning a %d-neuron, %d-layer sparse DNN across %d "
              "workers:\n\n",
              mc.neurons, mc.layers, workers);
  std::printf("%-10s %-22s %-12s\n", "Scheme", "rows shipped per batch",
              "imbalance");

  std::map<part::PartitionScheme, part::ModelPartition> partitions;
  for (part::PartitionScheme scheme :
       {part::PartitionScheme::kHypergraph, part::PartitionScheme::kBlock,
        part::PartitionScheme::kRandom}) {
    part::ModelPartitionOptions options;
    options.scheme = scheme;
    auto partition = part::PartitionModel(*dnn, workers, options);
    std::printf("%-10s %-22lld %-12.3f\n",
                std::string(part::PartitionSchemeName(scheme)).c_str(),
                static_cast<long long>(partition->total_row_transfers),
                partition->imbalance);
    partitions.emplace(scheme, std::move(*partition));
  }

  std::printf("\nEnd-to-end effect (FSD-Inf-Object):\n");
  std::printf("%-10s %-12s %-14s %-12s\n", "Scheme", "ms/sample",
              "bytes on wire", "comm $");
  for (part::PartitionScheme scheme :
       {part::PartitionScheme::kHypergraph, part::PartitionScheme::kRandom}) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    core::InferenceRequest request;
    request.dnn = &*dnn;
    request.partition = &partitions.at(scheme);
    request.batches = {&*input};
    request.options.variant = core::Variant::kObject;
    request.options.num_workers = workers;
    auto report = core::RunInference(&cloud, request);
    if (!report.ok() || !report->status.ok()) {
      std::printf("%-10s FAILED\n",
                  std::string(part::PartitionSchemeName(scheme)).c_str());
      continue;
    }
    std::printf("%-10s %-12.3f %-14s %-12s\n",
                std::string(part::PartitionSchemeName(scheme)).c_str(),
                report->per_sample_ms,
                HumanBytes(static_cast<double>(
                               report->metrics.totals.send_wire_bytes))
                    .c_str(),
                HumanDollars(report->billing.comm_cost).c_str());
  }
  std::printf(
      "\nHypergraph partitioning both balances compute and minimizes the\n"
      "rows crossing worker boundaries — the paper's Table III effect.\n");
  return 0;
}
