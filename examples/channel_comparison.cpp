// Channel comparison: the same inference request over FSD-Inf-Serial,
// FSD-Inf-Queue, FSD-Inf-Object, FSD-Inf-KV and FSD-Inf-Direct, with the
// per-channel service metrics and bills side by side (paper §III / §VI-D
// in miniature).
//
//   $ ./examples/channel_comparison
#include <cstdio>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/runtime.h"
#include "model/input_gen.h"

int main() {
  using namespace fsd;

  model::SparseDnnConfig model_config;
  model_config.neurons = 4096;
  model_config.layers = 12;
  auto dnn = model::GenerateSparseDnn(model_config);
  model::InputConfig input_config;
  input_config.neurons = model_config.neurons;
  input_config.batch = 128;
  auto input = model::GenerateInputBatch(input_config);

  const int32_t workers = 8;
  part::ModelPartitionOptions part_options;
  auto partition = part::PartitionModel(*dnn, workers, part_options);
  auto serial_partition = part::PartitionModel(*dnn, 1, part_options);

  std::printf("%-16s %-10s %-12s %-10s %-10s %-30s\n", "Variant",
              "latency s", "ms/sample", "comp $", "comms $",
              "channel activity");
  for (core::Variant variant :
       {core::Variant::kSerial, core::Variant::kQueue,
        core::Variant::kObject, core::Variant::kKv,
        core::Variant::kDirect}) {
    sim::Simulation sim;
    cloud::CloudEnv cloud(&sim);
    core::InferenceRequest request;
    request.dnn = &*dnn;
    request.partition =
        variant == core::Variant::kSerial ? &*serial_partition : &*partition;
    request.batches = {&*input};
    request.options.variant = variant;
    request.options.num_workers =
        variant == core::Variant::kSerial ? 1 : workers;
    auto report = core::RunInference(&cloud, request);
    if (!report.ok() || !report->status.ok()) {
      std::printf("%-16s FAILED\n",
                  std::string(core::VariantName(variant)).c_str());
      continue;
    }
    const auto& t = report->metrics.totals;
    std::string activity;
    if (variant == core::Variant::kQueue) {
      activity = StrFormat("%lld publishes, %lld polls",
                           static_cast<long long>(t.publishes),
                           static_cast<long long>(t.polls));
    } else if (variant == core::Variant::kObject) {
      activity = StrFormat("%lld PUTs, %lld GETs, %lld LISTs",
                           static_cast<long long>(t.puts_dat + t.puts_nul),
                           static_cast<long long>(t.gets),
                           static_cast<long long>(t.lists));
    } else if (variant == core::Variant::kKv) {
      activity = StrFormat("%lld pushes, %lld pops",
                           static_cast<long long>(t.kv_pushes),
                           static_cast<long long>(t.kv_pops));
    } else if (variant == core::Variant::kDirect) {
      activity = StrFormat("%lld links, %lld direct msgs, %lld relayed",
                           static_cast<long long>(t.direct_connects),
                           static_cast<long long>(t.direct_msgs),
                           static_cast<long long>(t.relay_fallback_msgs));
    } else {
      activity = "none (single instance)";
    }
    std::printf("%-16s %-10.3f %-12.3f %-10s %-10s %-30s\n",
                std::string(core::VariantName(variant)).c_str(),
                report->latency_s, report->per_sample_ms,
                HumanDollars(report->billing.faas_cost).c_str(),
                HumanDollars(report->billing.comm_cost).c_str(),
                activity.c_str());
  }
  return 0;
}
