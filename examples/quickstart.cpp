// Quickstart: distributed serverless inference in ~40 lines.
//
// Builds a small sparse DNN, partitions it for 4 FaaS workers with
// hypergraph partitioning, runs FSD-Inf-Queue on the simulated cloud, and
// prints the result digest, latency and the bill.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/runtime.h"
#include "model/input_gen.h"
#include "model/reference.h"

int main() {
  using namespace fsd;

  // 1) A model: 1024 neurons x 24 layers, 32 connections per neuron
  //    (Graph-Challenge-style sparse DNN).
  model::SparseDnnConfig model_config;
  model_config.neurons = 1024;
  model_config.layers = 24;
  auto dnn = model::GenerateSparseDnn(model_config);
  if (!dnn.ok()) {
    std::fprintf(stderr, "model: %s\n", dnn.status().ToString().c_str());
    return 1;
  }

  // 2) An inference batch of 64 sparse samples.
  model::InputConfig input_config;
  input_config.neurons = model_config.neurons;
  input_config.batch = 64;
  auto input = model::GenerateInputBatch(input_config);

  // 3) Partition the model offline for 4 workers (paper §III: the model
  //    must be pre-partitioned for the chosen parallelism).
  part::ModelPartitionOptions part_options;
  part_options.scheme = part::PartitionScheme::kHypergraph;
  auto partition = part::PartitionModel(*dnn, 4, part_options);

  // 4) Run on the simulated serverless cloud.
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::InferenceRequest request;
  request.dnn = &*dnn;
  request.partition = &*partition;
  request.batches = {&*input};
  request.options.variant = core::Variant::kQueue;
  request.options.num_workers = 4;
  auto report = core::RunInference(&cloud, request);
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "inference failed\n");
    return 1;
  }

  // 5) Inspect the results.
  const std::vector<double> scores =
      model::SampleScores(report->outputs[0], input_config.batch);
  std::printf("FSD-Inf-Queue on %d workers\n", request.options.num_workers);
  std::printf("  query latency : %.3f s (%.3f ms/sample)\n",
              report->latency_s, report->per_sample_ms);
  std::printf("  compute bill  : %s\n",
              HumanDollars(report->billing.faas_cost).c_str());
  std::printf("  comms bill    : %s\n",
              HumanDollars(report->billing.comm_cost).c_str());
  int active_samples = 0;
  double max_score = 0.0;
  for (double s : scores) {
    if (s > 0.0) ++active_samples;
    if (s > max_score) max_score = s;
  }
  std::printf("  final scores  : %d/%d samples active, max score %.3f\n",
              active_samples, input_config.batch, max_score);

  // Cross-check against the serial reference engine.
  auto expected = model::ReferenceInference(*dnn, *input);
  std::printf("  matches serial reference: %s\n",
              (expected.ok() && *expected == report->outputs[0]) ? "yes"
                                                                 : "NO");
  return 0;
}
