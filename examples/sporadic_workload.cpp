// Sporadic inference workload (the paper's §I / §VI-C motivating scenario):
// ad-hoc queries over mixed model sizes arrive irregularly through a day.
// The queries are served CONCURRENTLY by one ServingRuntime on one simulated
// cloud — morning-burst queries overlap and reuse each other's warm
// instances — and the day's serverless bill is compared against keeping an
// always-on server fleet or booting job-scoped VMs.
//
//   $ ./examples/sporadic_workload
#include <cstdio>
#include <map>

#include "baselines/server.h"
#include "cloud/cloud.h"
#include "common/strings.h"
#include "core/cost_model.h"
#include "core/serving.h"
#include "model/input_gen.h"

int main() {
  using namespace fsd;

  // Two model families a day of queries alternates between.
  struct Family {
    model::SparseDnn dnn;
    part::ModelPartition partition;
    part::ModelPartition serial_partition;
    linalg::ActivationMap input;
    core::Variant recommended;
  };
  std::map<int32_t, Family> families;
  for (int32_t neurons : {1024, 4096}) {
    model::SparseDnnConfig mc;
    mc.neurons = neurons;
    mc.layers = 16;
    auto dnn = model::GenerateSparseDnn(mc);
    part::ModelPartitionOptions po;
    auto partition = part::PartitionModel(*dnn, 12, po);
    auto serial = part::PartitionModel(*dnn, 1, po);
    model::InputConfig ic;
    ic.neurons = neurons;
    ic.batch = 96;
    auto input = model::GenerateInputBatch(ic);
    core::FsdOptions probe_options;
    const core::WorkloadEstimate estimate = core::EstimateWorkload(
        *dnn, *partition, probe_options, /*activation_density=*/0.3,
        ic.batch);
    families.emplace(neurons, Family{std::move(*dnn), std::move(*partition),
                                     std::move(*serial), std::move(*input),
                                     core::RecommendVariant(*dnn, 12,
                                                            estimate)});
  }

  // A sporadic day: bursts in the morning, quiet afternoon, evening spike.
  // Queries 0.1 h apart overlap in flight and share warm instances.
  struct Query {
    double hour;
    int32_t neurons;
  };
  const std::vector<Query> day = {
      {0.4, 1024}, {2.1, 4096},  {2.2, 4096},  {2.3, 1024}, {9.0, 4096},
      {9.1, 1024}, {15.7, 4096}, {21.0, 1024}, {21.1, 4096}, {21.2, 4096},
  };

  // Submit the whole day up front; the serving runtime executes each query
  // at its arrival time, overlapping whatever is in flight.
  sim::Simulation sim;
  cloud::CloudEnv cloud(&sim);
  core::ServingRuntime serving(&cloud);
  for (const Query& query : day) {
    const Family& family = families.at(query.neurons);
    core::InferenceRequest request;
    request.dnn = &family.dnn;
    const bool serial = family.recommended == core::Variant::kSerial;
    request.partition =
        serial ? &family.serial_partition : &family.partition;
    request.batches = {&family.input};
    request.options.variant = family.recommended;
    request.options.num_workers = serial ? 1 : 12;
    auto id = serving.Submit(request, query.hour * 3600.0);
    if (!id.ok()) {
      std::printf("submit failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  auto report = serving.Drain();
  if (!report.ok()) {
    std::printf("drain failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %-7s %-16s %-12s %-10s %-12s\n", "hour", "N", "variant",
              "latency s", "cold", "query $ (model)");
  double js_daily = 0.0;
  for (size_t q = 0; q < day.size(); ++q) {
    const Query& query = day[q];
    const Family& family = families.at(query.neurons);
    const core::QueryOutcome& outcome = report->queries[q];
    if (!outcome.report.status.ok()) {
      std::printf("%.1f    query failed: %s\n", query.hour,
                  outcome.report.status.ToString().c_str());
      continue;
    }
    // Per-query dollars under concurrency come from the validated cost
    // model (§VI-F); the shared ledger is only separable fleet-wide.
    std::printf("%-6.1f %-7d %-16s %-12.3f %-10s %-12s\n", query.hour,
                query.neurons,
                std::string(core::VariantName(family.recommended)).c_str(),
                outcome.report.latency_s,
                outcome.report.metrics.cold_starts > 0 ? "cold" : "warm",
                HumanDollars(outcome.report.predicted.total).c_str());

    // What the same query costs on a job-scoped VM.
    sim::Simulation js_sim;
    cloud::CloudEnv js_cloud(&js_sim);
    baselines::ServerRunOptions js;
    js.job_scoped = true;
    js.residence = baselines::ModelResidence::kObject;
    auto js_report = baselines::RunServerInference(&js_cloud, family.dnn,
                                                   family.input, js);
    if (js_report.ok()) js_daily += js_report->job_cost;
  }

  std::printf("\nFleet: %s\n", report->fleet.Summary().c_str());

  const double always_on_daily =
      2 * 24.0 * cloud.billing().pricing().vm_hourly.at("c5.12xlarge");
  std::printf("\nDaily bill for this sporadic mix:\n");
  std::printf("  FSD-Inference (auto-variant, serving runtime): %s\n",
              HumanDollars(report->billing.total_cost).c_str());
  std::printf("  Server-Job-Scoped           : %s (plus ~1 min boot per "
              "query)\n",
              HumanDollars(js_daily).c_str());
  std::printf("  Server-Always-On (2x c5.12xlarge): %s\n",
              HumanDollars(always_on_daily).c_str());
  return 0;
}
